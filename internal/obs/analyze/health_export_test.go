package analyze

import (
	"encoding/json"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/obs/health"
)

// TestHealthEndpointJSON drives the /health route end to end: a link
// forced down must surface as a critical entity in the JSON report, and
// an untouched observer must serve an all-healthy (empty-entity) shape.
func TestHealthEndpointJSON(t *testing.T) {
	o := obs.NewObserver()
	p := NewPlane(o)
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	get := func() HealthReport {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + "/health")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("/health status %d", resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
			t.Fatalf("/health content type %q", ct)
		}
		var rep HealthReport
		if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
			t.Fatalf("decode /health: %v", err)
		}
		return rep
	}

	rep := get()
	if rep.Overall != health.Healthy {
		t.Fatalf("idle plane overall = %s, want healthy", rep.Overall)
	}

	o.M().SetGauge("wan.link.down.wan-ab", 1)
	o.M().Add("wan.link.msgs.wan-ab", 1)
	// Default hysteresis trips after 2 consecutive evaluations; each GET
	// refreshes once.
	get()
	rep = get()
	if rep.Overall != health.Critical {
		t.Fatalf("overall = %s after link down, want critical", rep.Overall)
	}
	var found bool
	for _, e := range rep.Entities {
		if e.Kind == "link" && e.Name == "wan-ab" {
			found = true
			if e.State != health.Critical {
				t.Errorf("link entity state = %s, want critical", e.State)
			}
			if e.Reason == "" || e.Since.IsZero() {
				t.Errorf("link entity missing reason/since: %+v", e)
			}
		}
	}
	if !found {
		t.Fatalf("/health entities missing the down link: %+v", rep.Entities)
	}
}

// TestOpenMetricsHealthFlightFamilies asserts the health.* gauges and
// flight.* counters survive the OpenMetrics rename/typing and re-parse
// to the values the monitor and recorder published.
func TestOpenMetricsHealthFlightFamilies(t *testing.T) {
	o := obs.NewObserver()
	p := NewPlane(o)
	o.M().SetGauge("wan.link.down.wan-ab", 1)
	o.M().Add("wan.link.msgs.wan-ab", 1)
	p.Refresh()
	p.Refresh() // trip the hysteresis
	if _, err := p.Flight.Trip(flight.Trigger{Kind: flight.TriggerManual, Detail: "test"}); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(p.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var b strings.Builder
	if err := WriteOpenMetrics(&b, o.M().Snapshot()); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	if !strings.HasSuffix(text, "# EOF\n") {
		t.Fatalf("exposition must end with # EOF:\n%s", text)
	}

	// Re-parse every sample line into name -> value.
	types := map[string]string{}
	values := map[string]string{}
	for _, line := range strings.Split(strings.TrimSuffix(text, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("unparseable TYPE line %q", line)
			}
			types[f[2]] = f[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		if len(f) != 2 {
			t.Fatalf("unparseable sample line %q", line)
		}
		values[f[0]] = f[1]
	}

	wantGauges := map[string]string{
		"health_state":             strconv.Itoa(int(health.Critical)),
		"health_state_link_wan_ab": strconv.Itoa(int(health.Critical)),
		"health_entities_critical": "1",
		"health_entities_degraded": "0",
		"flight_last_unix_ns":      "", // value is a timestamp; presence + type is the contract
	}
	for name, want := range wantGauges {
		if types[name] != "gauge" {
			t.Errorf("%s: type %q, want gauge", name, types[name])
		}
		got, ok := values[name]
		if !ok {
			t.Errorf("exposition missing %s:\n%s", name, text)
			continue
		}
		if want != "" && got != want {
			t.Errorf("%s = %s, want %s", name, got, want)
		}
	}
	if types["flight_bundles"] != "counter" {
		t.Errorf("flight_bundles type %q, want counter", types["flight_bundles"])
	}
	// Two bundles: the health-critical transition auto-tripped the
	// recorder during Refresh's audit scan, then the manual Trip above.
	if got := values["flight_bundles_total"]; got != "2" {
		t.Errorf("flight_bundles_total = %q, want 2", got)
	}
}

// TestFlightEndpoints covers /flight (binary, decodable) and
// /flight.json, including the 404 before any capture.
func TestFlightEndpoints(t *testing.T) {
	o := obs.NewObserver()
	p := NewPlane(o)
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/flight")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("/flight before any capture: status %d, want 404", resp.StatusCode)
	}

	if _, err := p.Flight.Trip(flight.Trigger{Kind: flight.TriggerManual, Actor: "test"}); err != nil {
		t.Fatal(err)
	}
	resp, err = srv.Client().Get(srv.URL + "/flight")
	if err != nil {
		t.Fatal(err)
	}
	raw := make([]byte, 0, 4096)
	buf := make([]byte, 4096)
	for {
		n, rerr := resp.Body.Read(buf)
		raw = append(raw, buf[:n]...)
		if rerr != nil {
			break
		}
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/flight status %d", resp.StatusCode)
	}
	b, err := flight.DecodeBundle(raw)
	if err != nil {
		t.Fatalf("served bundle does not decode: %v", err)
	}
	if b.Trigger.Kind != flight.TriggerManual {
		t.Errorf("served trigger = %q", b.Trigger.Kind)
	}

	resp, err = srv.Client().Get(srv.URL + "/flight.json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var jb flight.Bundle
	if err := json.NewDecoder(resp.Body).Decode(&jb); err != nil {
		t.Fatalf("decode /flight.json: %v", err)
	}
	if jb.Trigger.Kind != flight.TriggerManual {
		t.Errorf("/flight.json trigger = %q", jb.Trigger.Kind)
	}
}
