// Package analyze is the observability plane's analysis layer: it turns
// the raw telemetry collected by internal/obs — finished spans, metric
// snapshots, audit events — into answers. Trace trees and per-phase
// critical paths explain where a migration's microseconds went; the
// unavailability ledger derives per-enclave downtime windows; the SLO
// evaluator checks declarative objectives against metric snapshots; the
// export plane serves OpenMetrics text and JSON dumps over HTTP.
//
// Like obs itself, the package depends only on the standard library and
// never mutates the telemetry it reads.
package analyze

import (
	"sort"
	"time"

	"repro/internal/obs"
)

// Tree is one reconstructed span tree within a trace. A trace normally
// has a single tree rooted at its ParentID-0 span, but ring eviction or
// an unfinished parent can orphan a subtree, which then surfaces as its
// own tree with Orphan set.
type Tree struct {
	Root obs.Span
	// Orphan marks a root adopted because its parent span was never
	// exported (evicted from the ring, or still in flight).
	Orphan bool

	children map[uint64][]obs.Span // parent span ID -> children, by Start
}

// Children returns the direct children of the span with the given ID,
// ordered by start time.
func (t *Tree) Children(spanID uint64) []obs.Span { return t.children[spanID] }

// BuildTraces reconstructs span trees from a flat exported span set,
// grouped by trace ID. Within a trace, trees are ordered by root start
// time.
func BuildTraces(spans []obs.Span) map[uint64][]*Tree {
	byTrace := map[uint64][]obs.Span{}
	for _, s := range spans {
		byTrace[s.TraceID] = append(byTrace[s.TraceID], s)
	}
	out := make(map[uint64][]*Tree, len(byTrace))
	for id, group := range byTrace {
		out[id] = buildTrees(group)
	}
	return out
}

func buildTrees(spans []obs.Span) []*Tree {
	present := make(map[uint64]bool, len(spans))
	for _, s := range spans {
		present[s.SpanID] = true
	}
	children := map[uint64][]obs.Span{}
	var trees []*Tree
	for _, s := range spans {
		if s.ParentID != 0 && present[s.ParentID] {
			children[s.ParentID] = append(children[s.ParentID], s)
			continue
		}
		trees = append(trees, &Tree{Root: s, Orphan: s.ParentID != 0})
	}
	for _, kids := range children {
		sort.Slice(kids, func(i, j int) bool {
			if !kids[i].Start.Equal(kids[j].Start) {
				return kids[i].Start.Before(kids[j].Start)
			}
			return kids[i].SpanID < kids[j].SpanID
		})
	}
	for _, t := range trees {
		t.children = children
	}
	sort.Slice(trees, func(i, j int) bool {
		if !trees[i].Root.Start.Equal(trees[j].Root.Start) {
			return trees[i].Root.Start.Before(trees[j].Root.Start)
		}
		return trees[i].Root.SpanID < trees[j].Root.SpanID
	})
	return trees
}

// Segment is one stretch of a trace's critical path: a contiguous time
// window attributed to exactly one span (and through it, one phase).
// Parent spans own the gaps their children don't cover.
type Segment struct {
	Span  obs.Span      `json:"span"`
	Phase string        `json:"phase"`
	Start time.Time     `json:"start"`
	End   time.Time     `json:"end"`
	Dur   time.Duration `json:"dur_ns"`
}

// CriticalPath attributes every instant of the tree's root window to
// exactly one span, by walking backward from the root's end and always
// descending into the child whose (clamped) end is latest. The returned
// segments are ordered by start time and their durations sum to the
// root's duration exactly — the per-phase breakdown is a partition, not
// an estimate. Children that report windows outside their parent's
// (clock skew, out-of-order End calls) are clamped to the parent window.
func (t *Tree) CriticalPath() []Segment {
	if t == nil || t.Root.Dur <= 0 {
		return nil
	}
	var out []Segment
	t.walk(t.Root, t.Root.Start, t.Root.EndTime(), &out)
	sort.Slice(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// walk attributes [winStart, winEnd) under span, appending segments.
func (t *Tree) walk(span obs.Span, winStart, winEnd time.Time, out *[]Segment) {
	cursor := winEnd
	for cursor.After(winStart) {
		best, bestStart, bestEnd, ok := t.latestChild(span.SpanID, winStart, cursor)
		if !ok {
			emit(out, span, winStart, cursor)
			return
		}
		if bestEnd.Before(cursor) {
			emit(out, span, bestEnd, cursor)
		}
		t.walk(best, bestStart, bestEnd, out)
		cursor = bestStart
	}
}

// latestChild finds the child of parentID whose window, clamped to
// [winStart, cursor), ends latest. Ties break toward the earlier start
// (longer segment), then the smaller span ID (determinism).
func (t *Tree) latestChild(parentID uint64, winStart, cursor time.Time) (best obs.Span, bestStart, bestEnd time.Time, ok bool) {
	for _, kid := range t.children[parentID] {
		cs, ce := clamp(kid, winStart, cursor)
		if !ce.After(cs) {
			continue
		}
		if !ok || ce.After(bestEnd) ||
			(ce.Equal(bestEnd) && cs.Before(bestStart)) ||
			(ce.Equal(bestEnd) && cs.Equal(bestStart) && kid.SpanID < best.SpanID) {
			best, bestStart, bestEnd, ok = kid, cs, ce, true
		}
	}
	return best, bestStart, bestEnd, ok
}

func clamp(s obs.Span, winStart, winEnd time.Time) (time.Time, time.Time) {
	start, end := s.Start, s.EndTime()
	if start.Before(winStart) {
		start = winStart
	}
	if end.After(winEnd) {
		end = winEnd
	}
	return start, end
}

func emit(out *[]Segment, span obs.Span, start, end time.Time) {
	*out = append(*out, Segment{
		Span:  span,
		Phase: PhaseOf(span.Name),
		Start: start,
		End:   end,
		Dur:   end.Sub(start),
	})
}

// Migration/recovery phases, in narrative order. A phase names what the
// protocol is doing while the enclave's time is being spent there.
const (
	PhaseFreeze      = "freeze"      // seal final state, destroy counters
	PhaseAttest      = "attest"      // offer/accept: attestation + channel
	PhaseTransfer    = "transfer"    // sealed Table I/II state on the wire
	PhaseResume      = "resume"      // unseal + rebuild at the destination
	PhaseCommit      = "commit"      // done handshake, source release
	PhaseEscrow      = "escrow"      // rack escrow reads/writes, mirroring
	PhaseBinding     = "binding"     // rollback-binding arbitration
	PhaseWAN         = "wan"         // cross-site link traversal
	PhaseQuorum      = "quorum"      // replicated counter operations
	PhaseRecover     = "recover"     // resurrect-from-escrow path
	PhaseOrchestrate = "orchestrate" // fleet/federation coordination + gaps
	PhaseOther       = "other"       // anything unrecognized
)

// Phases lists every phase in display order.
func Phases() []string {
	return []string{
		PhaseFreeze, PhaseAttest, PhaseTransfer, PhaseResume, PhaseCommit,
		PhaseEscrow, PhaseBinding, PhaseWAN, PhaseQuorum, PhaseRecover,
		PhaseOrchestrate, PhaseOther,
	}
}

// phaseBySpan maps exact span names to phases; prefix rules below catch
// the families.
var phaseBySpan = map[string]string{
	"lib.freeze":              PhaseFreeze,
	"me.offer":                PhaseAttest,
	"me.handle-migrate-offer": PhaseAttest,
	"me.migrate-out":          PhaseTransfer,
	"me.transfer":             PhaseTransfer,
	"me.data":                 PhaseTransfer,
	"me.handle-migrate-data":  PhaseTransfer,
	"lib.resume":              PhaseResume,
	"me.done":                 PhaseCommit,
	"me.handle-migrate-done":  PhaseCommit,
	"escrow.get":              PhaseEscrow,
	"binding.win":             PhaseBinding,
	"wan.hop":                 PhaseWAN,
	"lib.recover":             PhaseRecover,
}

// PhaseOf classifies a span name into a migration/recovery phase.
func PhaseOf(name string) string {
	if p, ok := phaseBySpan[name]; ok {
		return p
	}
	switch {
	case hasPrefix(name, "mirror."):
		return PhaseEscrow
	case hasPrefix(name, "quorum."):
		return PhaseQuorum
	case hasPrefix(name, "fleet."), hasPrefix(name, "fed."):
		return PhaseOrchestrate
	}
	return PhaseOther
}

func hasPrefix(s, prefix string) bool {
	return len(s) >= len(prefix) && s[:len(prefix)] == prefix
}

// Breakdown sums the tree's critical-path segments by phase. Because the
// critical path partitions the root window, the values sum to the root
// span's duration exactly.
func (t *Tree) Breakdown() map[string]time.Duration {
	out := map[string]time.Duration{}
	for _, seg := range t.CriticalPath() {
		out[seg.Phase] += seg.Dur
	}
	return out
}

// PhaseStat is one phase's share of an aggregated critical path.
type PhaseStat struct {
	Phase    string        `json:"phase"`
	Total    time.Duration `json:"total_ns"`
	Fraction float64       `json:"fraction"`
}

// Summary aggregates critical-path breakdowns across every tree whose
// root span carries the given name (e.g. all fleet.migrate traces).
type Summary struct {
	Root   string        `json:"root"`
	Count  int           `json:"count"`
	Total  time.Duration `json:"total_ns"`
	Mean   time.Duration `json:"mean_ns"`
	Phases []PhaseStat   `json:"phases"` // descending by total
}

// Summarize builds the aggregate critical-path summary for all traces in
// spans rooted at rootName. Count is zero when no such trace exists.
func Summarize(spans []obs.Span, rootName string) Summary {
	sum := Summary{Root: rootName}
	totals := map[string]time.Duration{}
	for _, trees := range BuildTraces(spans) {
		for _, t := range trees {
			if t.Root.Name != rootName || t.Root.Dur <= 0 {
				continue
			}
			sum.Count++
			sum.Total += t.Root.Dur
			for phase, d := range t.Breakdown() {
				totals[phase] += d
			}
		}
	}
	if sum.Count == 0 {
		return sum
	}
	sum.Mean = sum.Total / time.Duration(sum.Count)
	for phase, d := range totals {
		sum.Phases = append(sum.Phases, PhaseStat{
			Phase:    phase,
			Total:    d,
			Fraction: float64(d) / float64(sum.Total),
		})
	}
	sort.Slice(sum.Phases, func(i, j int) bool {
		if sum.Phases[i].Total != sum.Phases[j].Total {
			return sum.Phases[i].Total > sum.Phases[j].Total
		}
		return sum.Phases[i].Phase < sum.Phases[j].Phase
	})
	return sum
}
