package analyze

import (
	"fmt"
	"time"

	"repro/internal/obs"
)

// ObjectiveKind selects how an Objective reads its metric.
type ObjectiveKind string

const (
	// KindQuantile checks a histogram quantile against Max.
	KindQuantile ObjectiveKind = "quantile"
	// KindAge checks now − gauge (the gauge holds a unix-ns timestamp,
	// e.g. mirror.flush.last_unix_ns) against Max. RPO-style freshness.
	KindAge ObjectiveKind = "age"
)

// Objective is one declarative service-level objective: a metric, a way
// to read it, and the bound it must stay under.
type Objective struct {
	Name     string        `json:"name"`
	Metric   string        `json:"metric"`
	Kind     ObjectiveKind `json:"kind"`
	Quantile float64       `json:"quantile,omitempty"` // KindQuantile: 0.5, 0.99, or 0.999
	Max      time.Duration `json:"max_ns"`
}

// Verdict is the outcome of evaluating one objective.
type Verdict struct {
	Objective Objective     `json:"objective"`
	Actual    time.Duration `json:"actual_ns"`
	Violated  bool          `json:"violated"`
	// Missing means the metric had no data (never registered, zero
	// observations, or an unset timestamp gauge); missing is not a
	// violation — the objective simply hasn't been exercised.
	Missing bool `json:"missing,omitempty"`
}

// String renders the verdict for operator output.
func (v Verdict) String() string {
	switch {
	case v.Missing:
		return fmt.Sprintf("SLO %-24s SKIP  (no data for %s)", v.Objective.Name, v.Objective.Metric)
	case v.Violated:
		return fmt.Sprintf("SLO %-24s FAIL  %v > %v", v.Objective.Name, v.Actual, v.Objective.Max)
	default:
		return fmt.Sprintf("SLO %-24s ok    %v <= %v", v.Objective.Name, v.Actual, v.Objective.Max)
	}
}

// DefaultObjectives is the repo's stock SLO set, sized from the paper's
// measured baselines (856 µs migrations, ~0.26 ms kill→recovered,
// ~25 ms cross-WAN recovery) with generous headroom so only real
// regressions or stalls trip them.
func DefaultObjectives() []Objective {
	return []Objective{
		{Name: "freeze-window-p99", Metric: "unavail.freeze.window", Kind: KindQuantile, Quantile: 0.99, Max: 250 * time.Millisecond},
		{Name: "migration-p99", Metric: "fleet.migration.latency", Kind: KindQuantile, Quantile: 0.99, Max: 250 * time.Millisecond},
		{Name: "recovery-p99", Metric: "unavail.recovery.window", Kind: KindQuantile, Quantile: 0.99, Max: time.Second},
		{Name: "mirror-rpo-age", Metric: "mirror.flush.last_unix_ns", Kind: KindAge, Max: 5 * time.Minute},
	}
}

// Evaluate checks each objective against the snapshot. now anchors the
// KindAge objectives.
func Evaluate(snap obs.Snapshot, objs []Objective, now time.Time) []Verdict {
	out := make([]Verdict, 0, len(objs))
	for _, o := range objs {
		out = append(out, evaluate(snap, o, now))
	}
	return out
}

func evaluate(snap obs.Snapshot, o Objective, now time.Time) Verdict {
	v := Verdict{Objective: o}
	switch o.Kind {
	case KindAge:
		ts, ok := snap.Gauges[o.Metric]
		if !ok || ts == 0 {
			v.Missing = true
			return v
		}
		v.Actual = now.Sub(time.Unix(0, ts))
	default: // KindQuantile
		h, ok := snap.Histograms[o.Metric]
		if !ok || h.Count == 0 {
			v.Missing = true
			return v
		}
		switch {
		case o.Quantile <= 0.5:
			v.Actual = h.P50
		case o.Quantile <= 0.99:
			v.Actual = h.P99
		default:
			v.Actual = h.P999
		}
	}
	v.Violated = v.Actual > o.Max
	return v
}

// PublishVerdicts records the evaluation into the observer: the
// slo.violations gauge holds the current breach count and every breach
// appends an EventSLOViolation audit event naming the objective.
func PublishVerdicts(o *obs.Observer, verdicts []Verdict) {
	if o == nil {
		return
	}
	var violated int64
	for _, v := range verdicts {
		if !v.Violated {
			continue
		}
		violated++
		o.Event(obs.EventSLOViolation, "slo:"+v.Objective.Name,
			fmt.Sprintf("%s %v > %v", v.Objective.Metric, v.Actual, v.Objective.Max),
			obs.TraceContext{})
	}
	o.M().SetGauge("slo.violations", violated)
}
