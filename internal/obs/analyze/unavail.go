package analyze

import (
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// Window is one derived per-enclave downtime interval.
type Window struct {
	// Enclave is the lib span's Site label ("lib:<MREnclave>").
	Enclave string `json:"enclave"`
	TraceID uint64 `json:"trace_id"`
	// Kind is "freeze" (planned: freeze→resume during migration) or
	// "recovery" (unplanned: detection→resurrection after a kill).
	Kind  string        `json:"kind"`
	Start time.Time     `json:"start"`
	End   time.Time     `json:"end"`
	Dur   time.Duration `json:"dur_ns"`
}

const (
	// WindowFreeze: the enclave was frozen by a migration — from the
	// source's lib.freeze start to the destination's lib.resume end.
	WindowFreeze = "freeze"
	// WindowRecovery: the enclave was down after a failure — from the
	// recovery trace's root start to the lib.recover end, corroborated
	// by a resurrection audit event on the same trace.
	WindowRecovery = "recovery"
)

// UnavailabilityWindows derives downtime windows by pairing lib.* spans
// within each trace, using the audit stream to keep only recoveries that
// actually resurrected (zombie-refused attempts are not downtime ends).
func UnavailabilityWindows(spans []obs.Span, events []obs.AuditEvent) []Window {
	resurrected := map[uint64]bool{}
	for _, e := range events {
		if e.Type == obs.EventResurrection {
			resurrected[e.Trace.TraceID] = true
		}
	}
	var out []Window
	for traceID, trees := range BuildTraces(spans) {
		libs := map[string][]obs.Span{} // name -> spans in this trace
		var roots []obs.Span
		for _, t := range trees {
			collect(t, t.Root, libs)
			if !t.Orphan {
				roots = append(roots, t.Root)
			}
		}
		// Planned freeze windows: pair each lib.freeze with the first
		// lib.resume on the same enclave that ends after it.
		for _, fr := range libs["lib.freeze"] {
			for _, re := range libs["lib.resume"] {
				if re.Site != fr.Site || re.EndTime().Before(fr.Start) {
					continue
				}
				out = append(out, Window{
					Enclave: fr.Site,
					TraceID: traceID,
					Kind:    WindowFreeze,
					Start:   fr.Start,
					End:     re.EndTime(),
					Dur:     re.EndTime().Sub(fr.Start),
				})
				break
			}
		}
		// Recovery windows: detection (root start) to lib.recover end,
		// only when the trace carries a resurrection event.
		if !resurrected[traceID] {
			continue
		}
		for _, rc := range libs["lib.recover"] {
			start := rc.Start
			for _, root := range roots {
				if root.Start.Before(start) && !rc.EndTime().Before(root.Start) {
					start = root.Start
				}
			}
			out = append(out, Window{
				Enclave: rc.Site,
				TraceID: traceID,
				Kind:    WindowRecovery,
				Start:   start,
				End:     rc.EndTime(),
				Dur:     rc.EndTime().Sub(start),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Start.Equal(out[j].Start) {
			return out[i].Start.Before(out[j].Start)
		}
		return out[i].Enclave < out[j].Enclave
	})
	return out
}

func collect(t *Tree, s obs.Span, libs map[string][]obs.Span) {
	switch s.Name {
	case "lib.freeze", "lib.resume", "lib.recover":
		libs[s.Name] = append(libs[s.Name], s)
	}
	for _, kid := range t.Children(s.SpanID) {
		collect(t, kid, libs)
	}
}

// Ledger turns derived windows into first-class metrics exactly once
// each: scrapes and plan summaries can call Update repeatedly without
// double-observing the unavail.* histograms.
type Ledger struct {
	mu   sync.Mutex
	seen map[ledgerKey]bool
	max  map[string]time.Duration // kind -> lifetime max
}

type ledgerKey struct {
	trace   uint64
	enclave string
	kind    string
	start   int64
}

// NewLedger creates an empty unavailability ledger.
func NewLedger() *Ledger {
	return &Ledger{seen: map[ledgerKey]bool{}, max: map[string]time.Duration{}}
}

// Update derives the current window set from the observer's telemetry
// and publishes metrics for windows not yet accounted:
//
//	unavail.freeze.window    histogram of planned freeze windows
//	unavail.recovery.window  histogram of kill→recovered windows
//	unavail.freeze.max_ns    gauge, lifetime max freeze window
//	unavail.recovery.max_ns  gauge, lifetime max recovery window
//
// It returns every currently derivable window (old and new alike).
func (ld *Ledger) Update(o *obs.Observer) []Window {
	if ld == nil || o == nil {
		return nil
	}
	windows := UnavailabilityWindows(o.Tracer.Spans(), o.Events.Events())
	m := o.M()
	ld.mu.Lock()
	defer ld.mu.Unlock()
	for _, w := range windows {
		k := ledgerKey{trace: w.TraceID, enclave: w.Enclave, kind: w.Kind, start: w.Start.UnixNano()}
		if ld.seen[k] {
			continue
		}
		ld.seen[k] = true
		m.Histogram("unavail." + w.Kind + ".window").Observe(w.Dur)
		if w.Dur > ld.max[w.Kind] {
			ld.max[w.Kind] = w.Dur
			m.SetGauge("unavail."+w.Kind+".max_ns", int64(w.Dur))
		}
	}
	return windows
}
