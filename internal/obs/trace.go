// Package obs is the repository's zero-dependency observability layer:
// in-band trace propagation, a lock-cheap metrics registry, and an
// append-only audit event stream with a stable codec.
//
// All three pillars are nil-safe: every method on *Tracer, *Metrics,
// *EventLog, and *Observer works on a nil receiver and reduces to a few
// predictable branches, so instrumented hot paths (the Fig. 3 counter
// increment) pay nothing measurable when observability is disabled.
//
// Tracing model. A TraceContext is a (trace ID, span ID) pair. The trace
// ID names one logical operation end to end — a migration, a recovery, a
// quorum commit — and stays constant as the operation crosses goroutines,
// processes, and data centers. The span ID names the immediate parent
// span, so the exported span set reconstructs the tree. Contexts cross
// transport.Messenger boundaries as a small envelope prefix on the Send
// payload (Inject/Extract); transports strip the prefix before invoking
// handlers and surface the context on Message.Trace, so handlers that
// decrypt or decode their payloads never see it.
package obs

import (
	"crypto/rand"
	"encoding/binary"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// TraceContext identifies a position in one distributed trace. The zero
// value means "no trace": instrumentation treats it as absent and
// propagation becomes a no-op.
type TraceContext struct {
	TraceID uint64 `json:"trace_id"`
	SpanID  uint64 `json:"span_id"`
}

// Valid reports whether the context carries a live trace.
func (tc TraceContext) Valid() bool { return tc.TraceID != 0 }

// traceEnvelopeLen is the size of the in-band envelope: an 8-byte magic
// followed by the trace and span IDs.
const traceEnvelopeLen = 8 + 8 + 8

// traceMagic marks a payload carrying a trace envelope. Eight bytes keep
// the false-positive rate on random (sealed) payloads at 2^-64; the first
// byte deliberately collides with no codec tag used by the repo's wire
// formats (0xA*/0xE* blocks).
var traceMagic = [8]byte{0xD7, 'o', 'b', 's', 't', 'r', 'c', 0x01}

// Inject prefixes payload with the trace envelope. A zero context returns
// the payload unchanged, so uninstrumented callers cost nothing.
func Inject(tc TraceContext, payload []byte) []byte {
	if !tc.Valid() {
		return payload
	}
	out := make([]byte, traceEnvelopeLen+len(payload))
	copy(out, traceMagic[:])
	binary.BigEndian.PutUint64(out[8:], tc.TraceID)
	binary.BigEndian.PutUint64(out[16:], tc.SpanID)
	copy(out[traceEnvelopeLen:], payload)
	return out
}

// Extract detects and strips a trace envelope, returning the carried
// context and the inner payload. Payloads without the envelope pass
// through untouched with a zero context (backwards compatibility).
func Extract(payload []byte) (TraceContext, []byte) {
	if len(payload) < traceEnvelopeLen || [8]byte(payload[:8]) != traceMagic {
		return TraceContext{}, payload
	}
	tc := TraceContext{
		TraceID: binary.BigEndian.Uint64(payload[8:]),
		SpanID:  binary.BigEndian.Uint64(payload[16:]),
	}
	return tc, payload[traceEnvelopeLen:]
}

// Marshal encodes the context as 16 fixed bytes (for codecs that carry a
// context inside their own framing, e.g. the core local-call protocol).
func (tc TraceContext) Marshal() []byte {
	if !tc.Valid() {
		return nil
	}
	out := make([]byte, 16)
	binary.BigEndian.PutUint64(out, tc.TraceID)
	binary.BigEndian.PutUint64(out[8:], tc.SpanID)
	return out
}

// UnmarshalTrace decodes a context produced by Marshal. Empty or
// malformed input yields the zero context — absent, never an error.
func UnmarshalTrace(raw []byte) TraceContext {
	if len(raw) != 16 {
		return TraceContext{}
	}
	return TraceContext{
		TraceID: binary.BigEndian.Uint64(raw),
		SpanID:  binary.BigEndian.Uint64(raw[8:]),
	}
}

// Span is one finished or in-flight operation within a trace. Spans form
// a tree via ParentID; the root span of a trace has ParentID 0.
type Span struct {
	Name     string `json:"name"`
	TraceID  uint64 `json:"trace_id"`
	SpanID   uint64 `json:"span_id"`
	ParentID uint64 `json:"parent_id,omitempty"`
	// Site labels where the span was recorded (a machine, DC, or
	// component name); optional.
	Site string `json:"site,omitempty"`
	// Start is the wall-clock instant StartSpan ran; Dur is the elapsed
	// time at the first End call. Together they make the exported span
	// set analyzable: critical-path extraction and the unavailability
	// ledger (internal/obs/analyze) both work from these two fields.
	Start time.Time     `json:"start"`
	Dur   time.Duration `json:"dur_ns"`

	tracer *Tracer
	ended  bool
}

// EndTime returns the span's wall-clock end (Start + Dur).
func (s Span) EndTime() time.Time { return s.Start.Add(s.Dur) }

// Context returns the propagation context for work done under this span:
// children parented here share the span's trace.
func (s *Span) Context() TraceContext {
	if s == nil {
		return TraceContext{}
	}
	return TraceContext{TraceID: s.TraceID, SpanID: s.SpanID}
}

// End exports the span to its tracer. Safe on nil spans and safe to call
// more than once; only the first call records.
func (s *Span) End() {
	if s == nil || s.ended || s.tracer == nil {
		return
	}
	s.ended = true
	s.Dur = time.Since(s.Start)
	s.tracer.export(s)
}

// DefaultSpanCapacity bounds a NewTracer ring: old spans evict (counted
// in Dropped) instead of growing without limit, so a long soak with an
// observer wired holds memory flat.
const DefaultSpanCapacity = 1 << 16

// openTrackCapacity bounds the open-span registry: a workload that opens
// spans and never ends them cannot grow the tracer without limit.
// Registrations past the bound are simply not tracked (the span itself
// still records normally when it ends).
const openTrackCapacity = 8192

// OpenSpan is the immutable registration record of a span that has been
// started but not yet ended. It is captured at StartSpan time, before the
// caller may mutate the *Span (e.g. assigning Site), so snapshots of the
// open set are race-free by construction.
type OpenSpan struct {
	Name     string    `json:"name"`
	TraceID  uint64    `json:"trace_id"`
	SpanID   uint64    `json:"span_id"`
	ParentID uint64    `json:"parent_id,omitempty"`
	Start    time.Time `json:"start"`
}

// Tracer collects finished spans in a bounded ring (oldest evicted
// first). It is safe for concurrent use. A nil *Tracer is a valid
// disabled tracer: StartSpan returns a nil span and propagates the
// parent context unchanged.
type Tracer struct {
	mu       sync.Mutex
	buf      []Span // ring storage; buf[head] is the oldest retained span
	head     int
	capacity int    // 0 = unbounded
	seq      uint64 // span ID allocator; IDs are unique per tracer
	open     map[uint64]OpenSpan

	dropped atomic.Int64
}

// NewTracer creates an in-memory span collector bounded at
// DefaultSpanCapacity retained spans.
func NewTracer() *Tracer { return &Tracer{capacity: DefaultSpanCapacity} }

// NewTracerWithCapacity creates a collector retaining at most n spans
// (n <= 0 means unbounded — the pre-ring behavior, for tests and
// short-lived tools that must never lose a span).
func NewTracerWithCapacity(n int) *Tracer { return &Tracer{capacity: n} }

// SetCapacity re-bounds the ring to n retained spans (n <= 0 removes
// the bound). When shrinking, the oldest spans beyond the new bound are
// evicted and counted as dropped.
func (t *Tracer) SetCapacity(n int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	spans := t.orderedLocked()
	if n > 0 && len(spans) > n {
		t.dropped.Add(int64(len(spans) - n))
		spans = spans[len(spans)-n:]
	}
	t.capacity = n
	t.buf = spans
	t.head = 0
}

// Dropped returns how many spans the ring has evicted over the tracer's
// lifetime (exported as the obs.dropped.spans gauge).
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// StartSpan opens a span under parent (zero parent starts a new trace
// with a random trace ID) and returns it with the context to propagate
// into child work. On a nil tracer the span is nil and the parent context
// flows through unchanged, so propagation still works without recording.
func (t *Tracer) StartSpan(name string, parent TraceContext) (*Span, TraceContext) {
	if t == nil {
		return nil, parent
	}
	start := time.Now()
	traceID := parent.TraceID
	if traceID == 0 {
		traceID = randomID()
	}
	t.mu.Lock()
	t.seq++
	id := t.seq
	if t.open == nil {
		t.open = make(map[uint64]OpenSpan)
	}
	if len(t.open) < openTrackCapacity {
		t.open[id] = OpenSpan{
			Name:     name,
			TraceID:  traceID,
			SpanID:   id,
			ParentID: parent.SpanID,
			Start:    start,
		}
	}
	t.mu.Unlock()
	sp := &Span{
		Name:     name,
		TraceID:  traceID,
		SpanID:   id,
		ParentID: parent.SpanID,
		Start:    start,
		tracer:   t,
	}
	return sp, TraceContext{TraceID: sp.TraceID, SpanID: sp.SpanID}
}

func (t *Tracer) export(s *Span) {
	t.mu.Lock()
	delete(t.open, s.SpanID)
	if t.capacity > 0 && len(t.buf) >= t.capacity {
		// Full ring: overwrite the oldest span in place.
		t.buf[t.head] = *s
		t.head = (t.head + 1) % len(t.buf)
		t.dropped.Add(1)
	} else {
		t.buf = append(t.buf, *s)
	}
	t.mu.Unlock()
}

// orderedLocked returns the retained spans oldest-first (t.mu held).
func (t *Tracer) orderedLocked() []Span {
	out := make([]Span, 0, len(t.buf))
	out = append(out, t.buf[t.head:]...)
	return append(out, t.buf[:t.head]...)
}

// OpenSpans returns the registration records of spans started but not
// yet ended, oldest first. The records are immutable snapshots taken at
// StartSpan time, so this is safe to call while the spans' owners are
// still mutating them. The stuck-span watchdog (internal/obs/health)
// reads this to find operations open past their deadline.
func (t *Tracer) OpenSpans() []OpenSpan {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]OpenSpan, 0, len(t.open))
	for _, rec := range t.open {
		out = append(out, rec)
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Start.Equal(out[j].Start) {
			return out[i].Start.Before(out[j].Start)
		}
		return out[i].SpanID < out[j].SpanID
	})
	return out
}

// OpenLen returns the number of tracked open spans.
func (t *Tracer) OpenLen() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.open)
}

// Spans returns a copy of the retained finished spans in end order.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.orderedLocked()
}

// Len returns the number of retained finished spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.buf)
}

// Reset discards collected spans (the ID allocator keeps advancing, so
// span IDs stay unique across resets; the dropped tally is lifetime and
// also survives).
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.buf = nil
	t.head = 0
	t.mu.Unlock()
}

// ByTrace groups finished spans by trace ID.
func (t *Tracer) ByTrace() map[uint64][]Span {
	out := make(map[uint64][]Span)
	for _, s := range t.Spans() {
		out[s.TraceID] = append(out[s.TraceID], s)
	}
	return out
}

// randomID draws a nonzero 64-bit ID from crypto/rand. Trace IDs must be
// unforgeable enough not to collide across independent processes; spans
// within one tracer use the cheap sequential allocator instead.
func randomID() uint64 {
	var b [8]byte
	for {
		if _, err := rand.Read(b[:]); err != nil {
			// crypto/rand does not fail on supported platforms; if it
			// ever does, a constant non-zero ID keeps tracing functional.
			return 1
		}
		if id := binary.BigEndian.Uint64(b[:]); id != 0 {
			return id
		}
	}
}
