// Package health is the fleet's active observability layer: a per-entity
// health state machine fed by declarative detectors that are evaluated
// against the live obs.Metrics / obs.Tracer / obs.EventLog streams.
//
// The passive plane (internal/obs, internal/obs/analyze) records what
// happened; this package decides, while the fleet runs, whether anyone
// should be paged about it. Each detector inspects one subsystem's
// telemetry — quorum vote latency, mirror RPO, WAN loss, open spans,
// session-resume refusals — and proposes a state per entity. The Monitor
// merges proposals, applies hysteresis so a noisy metric cannot flap an
// entity between states, and on a real transition emits a
// "health-changed" audit event plus a health.state gauge. Consumers:
// the analyze Plane serves the states as JSON at /health, fleet.CostAware
// steers batches away from degraded links, and the flight recorder trips
// a black-box capture when anything reaches critical.
package health

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// State is an entity's health level. Order matters: higher is worse.
type State int

const (
	Healthy State = iota
	Degraded
	Critical
)

// String returns the lowercase state name.
func (s State) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Critical:
		return "critical"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// MarshalJSON renders the state as its name, so /health reads naturally.
func (s State) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// UnmarshalJSON accepts the names Marshal emits.
func (s *State) UnmarshalJSON(raw []byte) error {
	switch string(raw) {
	case `"healthy"`:
		*s = Healthy
	case `"degraded"`:
		*s = Degraded
	case `"critical"`:
		*s = Critical
	default:
		return fmt.Errorf("health: unknown state %s", raw)
	}
	return nil
}

// Entity identifies one watched component. Kind is a small vocabulary
// ("group", "mirror", "link", "me", "fleet"); Name is the instance.
type Entity struct {
	Kind string `json:"kind"`
	Name string `json:"name"`
}

func (e Entity) String() string { return e.Kind + "/" + e.Name }

// Finding is one detector's proposal for one entity this evaluation.
// Detectors report every entity they can currently observe — including
// healthy ones — so /health lists the whole watched surface, not only
// the broken parts.
type Finding struct {
	Entity Entity
	Level  State
	Reason string
}

// Sample is the telemetry snapshot one evaluation runs against. Now is
// passed in (rather than read inside detectors) so tests can drive
// deadline-based rules without sleeping.
type Sample struct {
	Snap obs.Snapshot
	Open []obs.OpenSpan
	Now  time.Time
}

// Detector inspects a sample and proposes per-entity states. Detectors
// may keep internal state across calls (counter deltas); the Monitor
// serializes all calls under its own lock.
type Detector interface {
	Name() string
	Detect(s *Sample) []Finding
}

// EntityHealth is the exported per-entity record (served at /health and
// embedded in flight bundles).
type EntityHealth struct {
	Kind   string    `json:"kind"`
	Name   string    `json:"name"`
	State  State     `json:"state"`
	Reason string    `json:"reason,omitempty"`
	Since  time.Time `json:"since"`
}

// Change describes one committed state transition.
type Change struct {
	Entity Entity
	From   State
	To     State
	Reason string
}

// Config tunes the Monitor's hysteresis.
type Config struct {
	// TripAfter is how many consecutive evaluations must propose a worse
	// state before the entity escalates (default 2). 1 escalates
	// immediately.
	TripAfter int
	// ClearAfter is how many consecutive evaluations must propose a
	// better state before the entity de-escalates (default 3). Clearing
	// slower than tripping keeps a flapping signal pinned at the worse
	// state instead of oscillating.
	ClearAfter int
}

func (c Config) withDefaults() Config {
	if c.TripAfter <= 0 {
		c.TripAfter = 2
	}
	if c.ClearAfter <= 0 {
		c.ClearAfter = 3
	}
	return c
}

// entityState is the per-entity hysteresis machine.
type entityState struct {
	state  State
	reason string
	since  time.Time

	// cand is the state the detectors have been proposing; streak counts
	// how many consecutive evaluations proposed it.
	cand       State
	candReason string
	streak     int
}

// Monitor runs detectors over an observer's telemetry and maintains the
// per-entity state machines. All methods are safe for concurrent use.
type Monitor struct {
	mu        sync.Mutex
	obs       *obs.Observer
	cfg       Config
	detectors []Detector
	entities  map[Entity]*entityState
	onChange  []func(Change)
}

// New creates a monitor over o with the given detectors. A nil observer
// yields a monitor whose evaluations see empty samples (harmless).
func New(o *obs.Observer, cfg Config, detectors ...Detector) *Monitor {
	return &Monitor{
		obs:       o,
		cfg:       cfg.withDefaults(),
		detectors: detectors,
		entities:  make(map[Entity]*entityState),
	}
}

// NewDefault creates a monitor with the standard detector set.
func NewDefault(o *obs.Observer) *Monitor {
	return New(o, Config{}, DefaultDetectors()...)
}

// OnChange registers a hook invoked (outside the monitor lock) for every
// committed state transition.
func (m *Monitor) OnChange(fn func(Change)) {
	if m == nil || fn == nil {
		return
	}
	m.mu.Lock()
	m.onChange = append(m.onChange, fn)
	m.mu.Unlock()
}

// sample builds the evaluation input from the live observer.
func (m *Monitor) sample(now time.Time) *Sample {
	s := &Sample{Now: now}
	if m.obs != nil {
		s.Snap = m.obs.M().Snapshot()
		if m.obs.Tracer != nil {
			s.Open = m.obs.Tracer.OpenSpans()
		}
	}
	return s
}

// Evaluate runs every detector against a fresh telemetry sample, applies
// hysteresis, commits transitions (audit event + gauge + hooks), and
// returns the resulting states. now is the evaluation instant (pass
// time.Now() in production; tests can march a fake clock).
func (m *Monitor) Evaluate(now time.Time) []EntityHealth {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	s := m.sample(now)

	// Merge findings: worst level per entity wins; reasons of the winning
	// level are joined.
	proposed := make(map[Entity]Finding)
	for _, d := range m.detectors {
		for _, f := range d.Detect(s) {
			cur, ok := proposed[f.Entity]
			switch {
			case !ok || f.Level > cur.Level:
				proposed[f.Entity] = f
			case f.Level == cur.Level && f.Level > Healthy && f.Reason != "":
				if cur.Reason != "" {
					cur.Reason += "; " + f.Reason
				} else {
					cur.Reason = f.Reason
				}
				proposed[f.Entity] = cur
			}
		}
	}
	// Entities the detectors have stopped mentioning drift back toward
	// healthy through the same hysteresis.
	for e := range m.entities {
		if _, ok := proposed[e]; !ok {
			proposed[e] = Finding{Entity: e, Level: Healthy}
		}
	}

	var changes []Change
	for e, f := range proposed {
		st, ok := m.entities[e]
		if !ok {
			st = &entityState{state: Healthy, since: now, cand: Healthy}
			m.entities[e] = st
		}
		if f.Level == st.state {
			st.cand, st.streak = st.state, 0
			if f.Level > Healthy && f.Reason != "" {
				st.reason = f.Reason // keep the freshest explanation
			}
			continue
		}
		if f.Level != st.cand {
			st.cand, st.candReason, st.streak = f.Level, f.Reason, 1
		} else {
			st.streak++
			if f.Reason != "" {
				st.candReason = f.Reason
			}
		}
		need := m.cfg.TripAfter
		if f.Level < st.state {
			need = m.cfg.ClearAfter
		}
		if st.streak >= need {
			from := st.state
			st.state, st.reason, st.since = st.cand, st.candReason, now
			st.cand, st.streak = st.state, 0
			changes = append(changes, Change{Entity: e, From: from, To: st.state, Reason: st.reason})
		}
	}

	// Publish gauges for every known entity plus the fleet-wide rollup.
	worst, degraded, critical := Healthy, 0, 0
	for e, st := range m.entities {
		if m.obs != nil {
			m.obs.M().SetGauge("health.state."+e.Kind+"."+e.Name, int64(st.state))
		}
		if st.state > worst {
			worst = st.state
		}
		switch st.state {
		case Degraded:
			degraded++
		case Critical:
			critical++
		}
	}
	if m.obs != nil {
		m.obs.M().SetGauge("health.state", int64(worst))
		m.obs.M().SetGauge("health.entities.degraded", int64(degraded))
		m.obs.M().SetGauge("health.entities.critical", int64(critical))
	}
	out := m.statesLocked()
	hooks := append([]func(Change){}, m.onChange...)
	m.mu.Unlock()

	for _, c := range changes {
		if m.obs != nil {
			detail := fmt.Sprintf("%s->%s", c.From, c.To)
			if c.Reason != "" {
				detail += ": " + c.Reason
			}
			m.obs.Event(obs.EventHealthChanged, "health:"+c.Entity.String(), detail, obs.TraceContext{})
		}
		for _, fn := range hooks {
			fn(c)
		}
	}
	return out
}

func (m *Monitor) statesLocked() []EntityHealth {
	out := make([]EntityHealth, 0, len(m.entities))
	for e, st := range m.entities {
		out = append(out, EntityHealth{
			Kind:   e.Kind,
			Name:   e.Name,
			State:  st.state,
			Reason: st.reason,
			Since:  st.since,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// States returns the current per-entity states (sorted by kind, name)
// without running an evaluation.
func (m *Monitor) States() []EntityHealth {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.statesLocked()
}

// StateOf returns one entity's current state (Healthy when unknown).
func (m *Monitor) StateOf(kind, name string) State {
	if m == nil {
		return Healthy
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if st, ok := m.entities[Entity{Kind: kind, Name: name}]; ok {
		return st.state
	}
	return Healthy
}

// Overall returns the worst state across all entities (Healthy when no
// entity is tracked).
func (m *Monitor) Overall() State {
	if m == nil {
		return Healthy
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	worst := Healthy
	for _, st := range m.entities {
		if st.state > worst {
			worst = st.state
		}
	}
	return worst
}
