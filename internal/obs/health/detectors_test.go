package health

import (
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func findEntity(fs []Finding, kind, name string) (Finding, bool) {
	for _, f := range fs {
		if f.Entity.Kind == kind && f.Entity.Name == name {
			return f, true
		}
	}
	return Finding{}, false
}

func TestQuorumDetectorSkew(t *testing.T) {
	d := NewQuorumDetector()
	s := &Sample{Snap: obs.Snapshot{
		Histograms: map[string]obs.HistogramSnapshot{
			"quorum.vote.latency.rack-a.a1": {Count: 10, P99: 1 * time.Millisecond},
			"quorum.vote.latency.rack-a.a2": {Count: 10, P99: 1 * time.Millisecond},
			"quorum.vote.latency.rack-a.a3": {Count: 10, P99: 20 * time.Millisecond},
		},
	}}
	f, ok := findEntity(d.Detect(s), "group", "rack-a")
	if !ok || f.Level != Degraded {
		t.Fatalf("20ms-vs-1ms skew not degraded: %+v", f)
	}
	if !strings.Contains(f.Reason, "skew") {
		t.Errorf("reason %q does not name the skew", f.Reason)
	}

	// Under the noise floor the same 20x ratio is ignored.
	d2 := NewQuorumDetector()
	s2 := &Sample{Snap: obs.Snapshot{
		Histograms: map[string]obs.HistogramSnapshot{
			"quorum.vote.latency.rack-a.a1": {Count: 10, P99: 50 * time.Microsecond},
			"quorum.vote.latency.rack-a.a2": {Count: 10, P99: 1 * time.Millisecond},
		},
	}}
	f2, ok := findEntity(d2.Detect(s2), "group", "rack-a")
	if !ok || f2.Level != Healthy {
		t.Errorf("sub-floor skew should be healthy: %+v", f2)
	}
}

func TestQuorumDetectorErrorsMajorityCritical(t *testing.T) {
	d := NewQuorumDetector()
	base := obs.Snapshot{
		Histograms: map[string]obs.HistogramSnapshot{
			"quorum.vote.latency.rack-a.a1": {Count: 10, P99: time.Millisecond},
			"quorum.vote.latency.rack-a.a2": {Count: 10, P99: time.Millisecond},
			"quorum.vote.latency.rack-a.a3": {Count: 10, P99: time.Millisecond},
		},
		Counters: map[string]int64{},
	}
	d.Detect(&Sample{Snap: base}) // prime the deltas

	// One replica erroring: degraded.
	one := base
	one.Counters = map[string]int64{"quorum.vote.errors.rack-a.a3": 2}
	f, ok := findEntity(d.Detect(&Sample{Snap: one}), "group", "rack-a")
	if !ok || f.Level != Degraded {
		t.Fatalf("single erroring replica not degraded: %+v", f)
	}

	// Two of three replicas erroring: one fault from quorum loss.
	two := base
	two.Counters = map[string]int64{
		"quorum.vote.errors.rack-a.a2": 3,
		"quorum.vote.errors.rack-a.a3": 5,
	}
	f, ok = findEntity(d.Detect(&Sample{Snap: two}), "group", "rack-a")
	if !ok || f.Level != Critical {
		t.Fatalf("majority erroring not critical: %+v", f)
	}
}

func TestMirrorDetectorRPOAge(t *testing.T) {
	d := NewMirrorDetector()
	now := time.Unix(100000, 0)
	s := &Sample{Now: now, Snap: obs.Snapshot{
		Counters: map[string]int64{"mirror.flush.total": 3, "mirror.push.total": 3, "mirror.enqueue.total": 5},
		Gauges: map[string]int64{
			"mirror.dirty":              2,
			"mirror.known":              2,
			"mirror.flush.last_unix_ns": now.Add(-10 * time.Minute).UnixNano(),
		},
	}}
	f, ok := findEntity(d.Detect(s), "mirror", "escrow")
	if !ok || f.Level != Degraded {
		t.Fatalf("10m RPO age with dirty backlog not degraded: %+v", f)
	}
	if !strings.Contains(f.Reason, "RPO age") {
		t.Errorf("reason %q does not name RPO age", f.Reason)
	}

	// Same age with nothing dirty: there is no unprotected data, healthy.
	s.Snap.Gauges["mirror.dirty"] = 0
	f, _ = findEntity(NewMirrorDetector().Detect(s), "mirror", "escrow")
	if f.Level != Healthy {
		t.Errorf("old flush with zero dirty should be healthy: %+v", f)
	}
}

func TestMirrorDetectorFlushWithoutPush(t *testing.T) {
	d := NewMirrorDetector()
	snap := func(flush, push, known int64) obs.Snapshot {
		return obs.Snapshot{
			Counters: map[string]int64{
				"mirror.flush.total":   flush,
				"mirror.push.total":    push,
				"mirror.enqueue.total": 10,
			},
			Gauges: map[string]int64{"mirror.known": known},
		}
	}
	// First flush pushes: healthy.
	f, _ := findEntity(d.Detect(&Sample{Snap: snap(1, 4, 2)}), "mirror", "escrow")
	if f.Level != Healthy {
		t.Fatalf("pushing flush flagged: %+v", f)
	}
	// Second flush "succeeds" but pushes nothing while instances exist:
	// the chaosmut skip-resync signature. Sticky until a flush pushes.
	f, _ = findEntity(d.Detect(&Sample{Snap: snap(2, 4, 2)}), "mirror", "escrow")
	if f.Level != Degraded || !strings.Contains(f.Reason, "pushed no records") {
		t.Fatalf("flush-without-push not degraded: %+v", f)
	}
	// No new flush this interval: the verdict must not silently clear.
	f, _ = findEntity(d.Detect(&Sample{Snap: snap(2, 4, 2)}), "mirror", "escrow")
	if f.Level != Degraded {
		t.Fatalf("flush-without-push verdict cleared without a pushing flush: %+v", f)
	}
	// A flush that pushes again clears it.
	f, _ = findEntity(d.Detect(&Sample{Snap: snap(3, 6, 2)}), "mirror", "escrow")
	if f.Level != Healthy {
		t.Fatalf("pushing flush did not clear the verdict: %+v", f)
	}
}

func TestMirrorDetectorNeverPushed(t *testing.T) {
	d := NewMirrorDetector()
	s := &Sample{Snap: obs.Snapshot{
		Counters: map[string]int64{
			"mirror.flush.total":   2,
			"mirror.enqueue.total": 6,
		},
	}}
	f, ok := findEntity(d.Detect(s), "mirror", "escrow")
	if !ok || f.Level != Critical {
		t.Fatalf("enqueued-but-never-pushed mirror not critical: %+v", f)
	}
}

func TestLinkDetectorDownAndLoss(t *testing.T) {
	d := NewLinkDetector()
	s := &Sample{Snap: obs.Snapshot{
		Gauges:   map[string]int64{"wan.link.down.wan-1": 1},
		Counters: map[string]int64{"wan.link.msgs.wan-1": 10},
	}}
	f, ok := findEntity(d.Detect(s), "link", "wan-1")
	if !ok || f.Level != Critical {
		t.Fatalf("down link not critical: %+v", f)
	}

	// Back up, but dropping 20% of traffic: degraded.
	s2 := &Sample{Snap: obs.Snapshot{
		Gauges: map[string]int64{"wan.link.down.wan-1": 0},
		Counters: map[string]int64{
			"wan.link.msgs.wan-1": 50,
			"wan.link.lost.wan-1": 10,
		},
	}}
	f, ok = findEntity(d.Detect(s2), "link", "wan-1")
	if !ok || f.Level != Degraded {
		t.Fatalf("20%% loss not degraded: %+v", f)
	}

	// Tiny sample below MinAttempts is not trusted.
	d2 := NewLinkDetector()
	s3 := &Sample{Snap: obs.Snapshot{
		Counters: map[string]int64{
			"wan.link.msgs.wan-1": 3,
			"wan.link.lost.wan-1": 2,
		},
	}}
	f, _ = findEntity(d2.Detect(s3), "link", "wan-1")
	if f.Level != Healthy {
		t.Errorf("sub-minimum sample flagged: %+v", f)
	}
}

func TestStuckSpanDetector(t *testing.T) {
	d := NewStuckSpanDetector()
	now := time.Unix(100000, 0)
	s := &Sample{Now: now, Open: []obs.OpenSpan{
		{Name: "fleet.migrate", SpanID: 7, Start: now.Add(-3 * time.Minute)},
		{Name: "me.batch", SpanID: 9, Start: now.Add(-5 * time.Minute)},
		{Name: "me.batch-offer", SpanID: 11, Start: now.Add(-time.Hour)}, // unwatched
	}}
	fs := d.Detect(s)
	f, ok := findEntity(fs, "fleet", "migrate")
	if !ok || f.Level != Degraded {
		t.Fatalf("3m-old fleet.migrate not degraded: %+v", f)
	}
	f, ok = findEntity(fs, "me", "batch")
	if !ok || f.Level != Critical {
		t.Fatalf("5m-old me.batch not critical: %+v", f)
	}
	if _, ok := findEntity(fs, "me", "batch-offer"); ok {
		t.Error("unwatched span produced a finding")
	}

	// Fresh spans: entities surface as healthy (the watched surface).
	s2 := &Sample{Now: now, Open: []obs.OpenSpan{
		{Name: "fleet.migrate", SpanID: 8, Start: now.Add(-time.Second)},
	}}
	f, ok = findEntity(d.Detect(s2), "fleet", "migrate")
	if !ok || f.Level != Healthy {
		t.Errorf("fresh span not healthy: %+v", f)
	}
}

func TestRefusalStormDetector(t *testing.T) {
	d := NewRefusalStormDetector()
	snap := func(n int64) *Sample {
		return &Sample{Snap: obs.Snapshot{Counters: map[string]int64{"me.session.resume.refused": n}}}
	}
	f, ok := findEntity(d.Detect(snap(1)), "me", "sessions")
	if !ok || f.Level != Healthy {
		t.Fatalf("one refusal flagged: %+v", f)
	}
	f, _ = findEntity(d.Detect(snap(5)), "me", "sessions") // delta 4
	if f.Level != Degraded {
		t.Fatalf("4-refusal burst not degraded: %+v", f)
	}
	f, _ = findEntity(d.Detect(snap(15)), "me", "sessions") // delta 10
	if f.Level != Critical {
		t.Fatalf("10-refusal burst not critical: %+v", f)
	}
	if fs := d.Detect(&Sample{Snap: obs.Snapshot{}}); fs != nil {
		t.Errorf("no counter should mean no findings, got %+v", fs)
	}
}

// TestDefaultDetectorsEndToEnd drives the full default stack through a
// Monitor over a real observer: an injected link-down gauge must commit
// the link entity to critical and emit the audit event.
func TestDefaultDetectorsEndToEnd(t *testing.T) {
	o := obs.NewObserver()
	m := New(o, Config{TripAfter: 1, ClearAfter: 2}, DefaultDetectors()...)
	o.M().SetGauge("wan.link.down.wan-ab", 1)
	o.M().Add("wan.link.msgs.wan-ab", 1)

	m.Evaluate(time.Unix(1000, 0))
	if st := m.StateOf("link", "wan-ab"); st != Critical {
		t.Fatalf("down link state = %s, want critical", st)
	}
	var saw bool
	for _, ev := range o.Events.Events() {
		if ev.Type == obs.EventHealthChanged && ev.Actor == "health:link/wan-ab" {
			saw = true
		}
	}
	if !saw {
		t.Error("no health-changed event for the link transition")
	}

	// Link heals: clears after ClearAfter evaluations.
	o.M().SetGauge("wan.link.down.wan-ab", 0)
	m.Evaluate(time.Unix(1001, 0))
	m.Evaluate(time.Unix(1002, 0))
	if st := m.StateOf("link", "wan-ab"); st != Healthy {
		t.Errorf("healed link state = %s, want healthy", st)
	}
}
