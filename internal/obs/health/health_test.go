package health

import (
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// scriptDetector replays a fixed sequence of levels for one entity, then
// holds the last one — the Monitor's input for hysteresis tests.
type scriptDetector struct {
	entity Entity
	levels []State
	i      int
}

func (d *scriptDetector) Name() string { return "script" }

func (d *scriptDetector) Detect(*Sample) []Finding {
	lvl := d.levels[len(d.levels)-1]
	if d.i < len(d.levels) {
		lvl = d.levels[d.i]
		d.i++
	}
	return []Finding{{Entity: d.entity, Level: lvl, Reason: "scripted"}}
}

func evalN(m *Monitor, n int, start time.Time) time.Time {
	for i := 0; i < n; i++ {
		start = start.Add(time.Second)
		m.Evaluate(start)
	}
	return start
}

// TestHysteresisNoFlap drives a detector that alternates healthy/degraded
// every evaluation: with TripAfter 2 the streak never reaches the bar, so
// the entity must never leave healthy and no health-changed event may
// fire — the exact flapping scenario the hysteresis exists to suppress.
func TestHysteresisNoFlap(t *testing.T) {
	o := obs.NewObserver()
	e := Entity{Kind: "link", Name: "flappy"}
	var seq []State
	for i := 0; i < 20; i++ {
		seq = append(seq, []State{Healthy, Degraded}[i%2])
	}
	m := New(o, Config{TripAfter: 2, ClearAfter: 3}, &scriptDetector{entity: e, levels: seq})
	changes := 0
	m.OnChange(func(Change) { changes++ })

	evalN(m, 20, time.Unix(1000, 0))

	if changes != 0 {
		t.Errorf("flapping signal committed %d transitions, want 0", changes)
	}
	if st := m.StateOf("link", "flappy"); st != Healthy {
		t.Errorf("state = %s, want healthy", st)
	}
	for _, ev := range o.Events.Events() {
		if ev.Type == obs.EventHealthChanged {
			t.Fatalf("unexpected health-changed event: %+v", ev)
		}
	}
}

// TestTripAndClear walks one entity through the full lifecycle: sustained
// degradation trips after TripAfter evaluations (emitting the audit event
// and gauge), sustained recovery clears only after the slower ClearAfter.
func TestTripAndClear(t *testing.T) {
	o := obs.NewObserver()
	e := Entity{Kind: "mirror", Name: "escrow"}
	seq := []State{Degraded, Degraded, Degraded, Healthy, Healthy, Healthy, Healthy}
	m := New(o, Config{TripAfter: 2, ClearAfter: 3}, &scriptDetector{entity: e, levels: seq})
	var changes []Change
	m.OnChange(func(c Change) { changes = append(changes, c) })

	now := time.Unix(1000, 0)
	now = now.Add(time.Second)
	m.Evaluate(now) // streak 1: still healthy
	if st := m.StateOf("mirror", "escrow"); st != Healthy {
		t.Fatalf("tripped after one evaluation (TripAfter=2): %s", st)
	}
	now = now.Add(time.Second)
	m.Evaluate(now) // streak 2: trips
	if st := m.StateOf("mirror", "escrow"); st != Degraded {
		t.Fatalf("state after 2 degraded evals = %s, want degraded", st)
	}
	snap := o.M().Snapshot()
	if g := snap.Gauges["health.state.mirror.escrow"]; g != int64(Degraded) {
		t.Errorf("health.state.mirror.escrow gauge = %d, want %d", g, Degraded)
	}
	if g := snap.Gauges["health.entities.degraded"]; g != 1 {
		t.Errorf("health.entities.degraded = %d, want 1", g)
	}

	// Healthy proposals: clears only on the third (ClearAfter=3).
	now = evalN(m, 2, now) // detector emits 1 more degraded, then healthy
	now = evalN(m, 2, now)
	if st := m.StateOf("mirror", "escrow"); st != Healthy {
		t.Fatalf("state after 3 healthy evals = %s, want healthy", st)
	}

	if len(changes) != 2 {
		t.Fatalf("got %d transitions, want 2 (trip + clear): %+v", len(changes), changes)
	}
	if changes[0].To != Degraded || changes[1].To != Healthy {
		t.Errorf("transition sequence wrong: %+v", changes)
	}
	var sawEvent bool
	for _, ev := range o.Events.Events() {
		if ev.Type == obs.EventHealthChanged && ev.Actor == "health:mirror/escrow" &&
			strings.Contains(ev.Detail, "healthy->degraded") {
			sawEvent = true
		}
	}
	if !sawEvent {
		t.Error("no health-changed audit event for the trip transition")
	}
}

// TestOverallWorst asserts the rollup reports the worst entity and the
// health.state gauge tracks it.
func TestOverallWorst(t *testing.T) {
	o := obs.NewObserver()
	m := New(o, Config{TripAfter: 1, ClearAfter: 1},
		&scriptDetector{entity: Entity{Kind: "link", Name: "wan-1"}, levels: []State{Critical}},
		&scriptDetector{entity: Entity{Kind: "group", Name: "rack-a"}, levels: []State{Degraded}},
		&scriptDetector{entity: Entity{Kind: "me", Name: "sessions"}, levels: []State{Healthy}},
	)
	m.Evaluate(time.Unix(1000, 0))
	if got := m.Overall(); got != Critical {
		t.Errorf("Overall = %s, want critical", got)
	}
	snap := o.M().Snapshot()
	if g := snap.Gauges["health.state"]; g != int64(Critical) {
		t.Errorf("health.state gauge = %d, want %d", g, Critical)
	}
	if g := snap.Gauges["health.entities.critical"]; g != 1 {
		t.Errorf("health.entities.critical = %d, want 1", g)
	}
	states := m.States()
	if len(states) != 3 {
		t.Fatalf("States() has %d entities, want 3", len(states))
	}
	// Sorted by kind then name.
	if states[0].Kind != "group" || states[1].Kind != "link" || states[2].Kind != "me" {
		t.Errorf("states not sorted: %+v", states)
	}
}

// TestStateJSONRoundTrip covers the custom State marshaling.
func TestStateJSONRoundTrip(t *testing.T) {
	for _, s := range []State{Healthy, Degraded, Critical} {
		raw, err := s.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		var back State
		if err := back.UnmarshalJSON(raw); err != nil {
			t.Fatalf("unmarshal %s: %v", raw, err)
		}
		if back != s {
			t.Errorf("round trip %s -> %s", s, back)
		}
	}
	var bad State
	if err := bad.UnmarshalJSON([]byte(`"on-fire"`)); err == nil {
		t.Error("unknown state name unmarshaled without error")
	}
}
