package health

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// DefaultDetectors returns the standard watchdog set: quorum vote skew,
// mirror RPO, WAN link loss, stuck root spans, and session-resume
// refusal storms.
func DefaultDetectors() []Detector {
	return []Detector{
		NewQuorumDetector(),
		NewMirrorDetector(),
		NewLinkDetector(),
		NewStuckSpanDetector(),
		NewRefusalStormDetector(),
	}
}

// splitLastDot splits "prefix.suffix" at the last dot.
func splitLastDot(s string) (string, string, bool) {
	i := strings.LastIndexByte(s, '.')
	if i <= 0 || i == len(s)-1 {
		return "", "", false
	}
	return s[:i], s[i+1:], true
}

// QuorumDetector watches the per-replica vote telemetry pserepl records
// during quorum broadcasts: quorum.vote.latency.<group>.<replica>
// histograms and quorum.vote.errors.<group>.<replica> counters. A
// replica whose votes error (timeouts, unsynced-replica refusals) or
// whose vote latency runs far ahead of its peers marks the group
// degraded; when a majority of replicas are erroring the group is one
// fault from losing quorum and goes critical.
type QuorumDetector struct {
	// SkewFactor flags a group when the slowest replica's p99 vote
	// latency exceeds the fastest replica's by this factor (default 4).
	SkewFactor float64
	// MinLatency is a noise floor: skew is ignored while the slowest p99
	// is below it (default 2ms), so microsecond-scale jitter in a local
	// simulation never pages anyone.
	MinLatency time.Duration

	prevErrs map[string]int64
}

// NewQuorumDetector returns a QuorumDetector with default thresholds.
func NewQuorumDetector() *QuorumDetector {
	return &QuorumDetector{SkewFactor: 4, MinLatency: 2 * time.Millisecond, prevErrs: map[string]int64{}}
}

func (d *QuorumDetector) Name() string { return "quorum" }

func (d *QuorumDetector) Detect(s *Sample) []Finding {
	const latPrefix = "quorum.vote.latency."
	const errPrefix = "quorum.vote.errors."
	type replica struct {
		id  string
		p99 time.Duration
	}
	groups := map[string][]replica{}
	for name, h := range s.Snap.Histograms {
		if !strings.HasPrefix(name, latPrefix) || h.Count == 0 {
			continue
		}
		if g, id, ok := splitLastDot(name[len(latPrefix):]); ok {
			groups[g] = append(groups[g], replica{id: id, p99: h.P99})
		}
	}
	errDelta := map[string]map[string]int64{} // group -> replica -> new errors
	for name, v := range s.Snap.Counters {
		if !strings.HasPrefix(name, errPrefix) {
			continue
		}
		g, id, ok := splitLastDot(name[len(errPrefix):])
		if !ok {
			continue
		}
		if delta := v - d.prevErrs[name]; delta > 0 {
			if errDelta[g] == nil {
				errDelta[g] = map[string]int64{}
			}
			errDelta[g][id] = delta
		}
		d.prevErrs[name] = v
	}

	var out []Finding
	for g, reps := range groups {
		level, reasons := Healthy, []string(nil)
		if len(reps) >= 2 {
			sort.Slice(reps, func(i, j int) bool { return reps[i].p99 < reps[j].p99 })
			fast, slow := reps[0], reps[len(reps)-1]
			if slow.p99 >= d.MinLatency && fast.p99 > 0 &&
				float64(slow.p99) >= d.SkewFactor*float64(fast.p99) {
				level = Degraded
				reasons = append(reasons, fmt.Sprintf(
					"vote-latency skew: %s p99=%s vs %s p99=%s", slow.id, slow.p99, fast.id, fast.p99))
			}
		}
		if errs := errDelta[g]; len(errs) > 0 {
			ids := make([]string, 0, len(errs))
			var n int64
			for id, c := range errs {
				ids = append(ids, id)
				n += c
			}
			sort.Strings(ids)
			lvl := Degraded
			if 2*len(errs) > len(reps) && len(reps) > 0 {
				lvl = Critical // majority of replicas erroring: one fault from quorum loss
			}
			if lvl > level {
				level = lvl
			}
			reasons = append(reasons, fmt.Sprintf(
				"%d vote errors from %s (lagging or unsynced replicas)", n, strings.Join(ids, ",")))
		}
		out = append(out, Finding{
			Entity: Entity{Kind: "group", Name: g},
			Level:  level,
			Reason: strings.Join(reasons, "; "),
		})
	}
	// Groups with only error counters (no latency yet) still surface.
	for g := range errDelta {
		if _, ok := groups[g]; ok {
			continue
		}
		out = append(out, Finding{
			Entity: Entity{Kind: "group", Name: g},
			Level:  Degraded,
			Reason: "vote errors before any successful vote",
		})
	}
	return out
}

// MirrorDetector watches the cross-DC escrow mirror's flush telemetry.
// Beyond the wall-clock rules (RPO age, dirty backlog) it carries a
// time-free consistency rule: a successful flush while mirrored
// instances exist must push records, so a flush that "succeeds" without
// pushing anything — exactly what the chaosmut skip-mirror-push mutation
// fabricates — marks the mirror degraded until a flush pushes again.
type MirrorDetector struct {
	// MaxRPOAge flags the mirror when dirty instances have waited longer
	// than this since the last successful flush (default 5m).
	MaxRPOAge time.Duration
	// MaxDirty flags the mirror when the dirty backlog alone exceeds
	// this many instances (default 64).
	MaxDirty int64

	prevFlushOK     int64
	prevPushOK      int64
	lastFlushPushed bool
	sawFlush        bool
}

// NewMirrorDetector returns a MirrorDetector with default thresholds.
func NewMirrorDetector() *MirrorDetector {
	return &MirrorDetector{MaxRPOAge: 5 * time.Minute, MaxDirty: 64, lastFlushPushed: true}
}

func (d *MirrorDetector) Name() string { return "mirror" }

func (d *MirrorDetector) Detect(s *Sample) []Finding {
	flushTotal := s.Snap.Counters["mirror.flush.total"]
	enqueue := s.Snap.Counters["mirror.enqueue.total"]
	pushTotal := s.Snap.Counters["mirror.push.total"]
	_, hasDirty := s.Snap.Gauges["mirror.dirty"]
	if flushTotal == 0 && enqueue == 0 && pushTotal == 0 && !hasDirty {
		return nil // no mirror in this deployment
	}
	flushOK := flushTotal - s.Snap.Counters["mirror.flush.errors"]
	pushOK := pushTotal - s.Snap.Counters["mirror.push.errors"]
	known := s.Snap.Gauges["mirror.known"]
	dirty := s.Snap.Gauges["mirror.dirty"]

	if dFlush := flushOK - d.prevFlushOK; dFlush > 0 {
		d.sawFlush = true
		d.lastFlushPushed = pushOK-d.prevPushOK > 0 || known == 0
	}
	d.prevFlushOK, d.prevPushOK = flushOK, pushOK

	level, reasons := Healthy, []string(nil)
	bump := func(lvl State, format string, args ...any) {
		if lvl > level {
			level = lvl
		}
		reasons = append(reasons, fmt.Sprintf(format, args...))
	}
	if enqueue > 0 && flushOK > 0 && pushOK == 0 {
		bump(Critical, "flushes succeed but no escrow record has ever been pushed (enqueued=%d flushed=%d)",
			enqueue, flushOK)
	} else if d.sawFlush && !d.lastFlushPushed {
		bump(Degraded, "last successful mirror flush pushed no records (flush=%d push=%d known=%d)",
			flushOK, pushOK, known)
	}
	if stamp := s.Snap.Gauges["mirror.flush.last_unix_ns"]; dirty > 0 && stamp > 0 {
		if age := s.Now.Sub(time.Unix(0, stamp)); age > d.MaxRPOAge {
			bump(Degraded, "mirror RPO age %s exceeds %s with %d dirty instances",
				age.Round(time.Second), d.MaxRPOAge, dirty)
		}
	}
	if dirty > d.MaxDirty {
		bump(Degraded, "dirty backlog %d exceeds %d", dirty, d.MaxDirty)
	}
	return []Finding{{
		Entity: Entity{Kind: "mirror", Name: "escrow"},
		Level:  level,
		Reason: strings.Join(reasons, "; "),
	}}
}

// LinkDetector watches per-link WAN telemetry: the wan.link.down.<name>
// gauge and the wan.link.{msgs,lost,refused}.<name> counters
// transport.WANLink records per forwarded exchange. An administratively
// down (or carrier-lost) link is critical; a link dropping or refusing
// more than MaxLossRatio of its recent traffic is degraded.
type LinkDetector struct {
	// MaxLossRatio is the tolerated fraction of (lost+refused) exchanges
	// since the previous evaluation (default 0.05).
	MaxLossRatio float64
	// MinAttempts is the minimum per-interval sample before the ratio is
	// trusted (default 20).
	MinAttempts int64

	prevMsgs map[string]int64
	prevBad  map[string]int64
}

// NewLinkDetector returns a LinkDetector with default thresholds.
func NewLinkDetector() *LinkDetector {
	return &LinkDetector{
		MaxLossRatio: 0.05, MinAttempts: 20,
		prevMsgs: map[string]int64{}, prevBad: map[string]int64{},
	}
}

func (d *LinkDetector) Name() string { return "link" }

func (d *LinkDetector) Detect(s *Sample) []Finding {
	links := map[string]bool{}
	for name := range s.Snap.Gauges {
		if rest, ok := strings.CutPrefix(name, "wan.link.down."); ok {
			links[rest] = true
		}
	}
	for name := range s.Snap.Counters {
		for _, p := range []string{"wan.link.msgs.", "wan.link.lost.", "wan.link.refused."} {
			if rest, ok := strings.CutPrefix(name, p); ok {
				links[rest] = true
			}
		}
	}
	var out []Finding
	for link := range links {
		msgs := s.Snap.Counters["wan.link.msgs."+link]
		bad := s.Snap.Counters["wan.link.lost."+link] + s.Snap.Counters["wan.link.refused."+link]
		dMsgs, dBad := msgs-d.prevMsgs[link], bad-d.prevBad[link]
		d.prevMsgs[link], d.prevBad[link] = msgs, bad

		level, reason := Healthy, ""
		if s.Snap.Gauges["wan.link.down."+link] != 0 {
			level, reason = Critical, "link down"
		} else if total := dMsgs + dBad; total >= d.MinAttempts {
			if ratio := float64(dBad) / float64(total); ratio > d.MaxLossRatio {
				level = Degraded
				reason = fmt.Sprintf("lost %d of last %d exchanges (%.0f%%)", dBad, total, 100*ratio)
			}
		}
		out = append(out, Finding{Entity: Entity{Kind: "link", Name: link}, Level: level, Reason: reason})
	}
	return out
}

// StuckSpanDetector is the watchdog over the tracer's open-span
// registry: a fleet.migrate, fleet.recover, or me.batch root operation
// still open past its deadline means a migration or drain has wedged —
// precisely the failure that leaves no finished span to alert on.
type StuckSpanDetector struct {
	// Deadline is how long a watched span may stay open before the
	// owning entity degrades; twice the deadline is critical
	// (default 2m).
	Deadline time.Duration
	// Watch maps span names to the entity that owns them.
	Watch map[string]Entity
}

// NewStuckSpanDetector returns a StuckSpanDetector covering the fleet
// planner and the batched-drain sender.
func NewStuckSpanDetector() *StuckSpanDetector {
	return &StuckSpanDetector{
		Deadline: 2 * time.Minute,
		Watch: map[string]Entity{
			"fleet.migrate": {Kind: "fleet", Name: "migrate"},
			"fleet.recover": {Kind: "fleet", Name: "recover"},
			"me.batch":      {Kind: "me", Name: "batch"},
		},
	}
}

func (d *StuckSpanDetector) Name() string { return "stuck-span" }

func (d *StuckSpanDetector) Detect(s *Sample) []Finding {
	worst := map[Entity]Finding{}
	for _, sp := range s.Open {
		e, ok := d.Watch[sp.Name]
		if !ok {
			continue
		}
		age := s.Now.Sub(sp.Start)
		level := Healthy
		switch {
		case age > 2*d.Deadline:
			level = Critical
		case age > d.Deadline:
			level = Degraded
		}
		f := Finding{Entity: e, Level: level}
		if level > Healthy {
			f.Reason = fmt.Sprintf("%s span %d open for %s (deadline %s)",
				sp.Name, sp.SpanID, age.Round(time.Second), d.Deadline)
		}
		if cur, ok := worst[e]; !ok || f.Level > cur.Level {
			worst[e] = f
		}
	}
	out := make([]Finding, 0, len(worst))
	for _, f := range worst {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Entity.String() < out[j].Entity.String() })
	return out
}

// RefusalStormDetector watches the me.session.resume.refused counter: a
// burst of authenticated resume refusals means destinations are
// repeatedly rejecting cached attested sessions — the signature of an
// on-path attacker replaying or desynchronizing resume tickets (PR 9
// hardening), or of an epoch-fence storm worth a human look either way.
type RefusalStormDetector struct {
	// DegradedAt / CriticalAt are refusals-per-evaluation thresholds
	// (defaults 3 and 8).
	DegradedAt int64
	CriticalAt int64

	prev int64
}

// NewRefusalStormDetector returns a RefusalStormDetector with default
// thresholds.
func NewRefusalStormDetector() *RefusalStormDetector {
	return &RefusalStormDetector{DegradedAt: 3, CriticalAt: 8}
}

func (d *RefusalStormDetector) Name() string { return "refusal-storm" }

func (d *RefusalStormDetector) Detect(s *Sample) []Finding {
	refused, ok := s.Snap.Counters["me.session.resume.refused"]
	if !ok {
		return nil
	}
	delta := refused - d.prev
	d.prev = refused
	level, reason := Healthy, ""
	switch {
	case delta >= d.CriticalAt:
		level = Critical
	case delta >= d.DegradedAt:
		level = Degraded
	}
	if level > Healthy {
		reason = fmt.Sprintf("%d session-resume refusals since last evaluation — possible on-path attacker", delta)
	}
	return []Finding{{Entity: Entity{Kind: "me", Name: "sessions"}, Level: level, Reason: reason}}
}
