package obs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Audit event types: the security-relevant state transitions the paper's
// arguments hinge on. The chaos invariant checker replays this stream,
// so the names are part of the stable codec contract.
const (
	// EventFreeze: a library sealed its final pre-migration state and
	// destroyed its counters; the source instance can never run again.
	EventFreeze = "freeze"
	// EventBindingWin: a recovering library won the exactly-one-winner
	// DestroyAndRead race on an escrow binding counter.
	EventBindingWin = "binding-win"
	// EventResurrection: a library instance was fully restored from
	// escrowed state on a new machine.
	EventResurrection = "resurrection"
	// EventZombieRefused: an instance observed ErrRecoveredAway — its
	// state was resurrected elsewhere — and refused to continue.
	EventZombieRefused = "zombie-refused"
	// EventGrantRevoked: a federation trust grant was revoked
	// (Disconnect distrusted the partner's issuer).
	EventGrantRevoked = "grant-revoked"
	// EventSiteLossFailover: a forced cross-site recovery proceeded
	// without origin arbitration (site presumed lost); the deferred
	// origin-binding revocation was queued.
	EventSiteLossFailover = "site-loss-failover"
	// EventEscrowSupersede: a newer escrow version replaced (superseded)
	// an older record for the same instance.
	EventEscrowSupersede = "escrow-supersede"
	// EventEscrowTombstone: an escrow record was tombstoned after its
	// single-use resurrection was consumed.
	EventEscrowTombstone = "escrow-tombstone"
	// EventSLOViolation: a declared service-level objective
	// (internal/obs/analyze) was evaluated and found breached.
	EventSLOViolation = "slo-violation"
	// EventHealthChanged: the health plane (internal/obs/health) moved an
	// entity between healthy/degraded/critical states.
	EventHealthChanged = "health-changed"
	// EventFlightRecorded: the flight recorder (internal/obs/flight)
	// captured a black-box bundle in response to a trigger.
	EventFlightRecorded = "flight-recorded"
)

// AuditEvent is one entry in the append-only audit stream.
type AuditEvent struct {
	// Seq is the append index within the log (assigned by EventLog).
	Seq uint64 `json:"seq"`
	// Type is one of the Event* constants.
	Type string `json:"type"`
	// Actor names the component recording the event (a machine, library
	// measurement, group, or federation link).
	Actor string `json:"actor,omitempty"`
	// Detail is free-form context (counter UUIDs, escrow IDs, versions).
	Detail string `json:"detail,omitempty"`
	// Trace ties the event into a distributed trace when one was active.
	Trace TraceContext `json:"trace,omitempty"`
}

// DefaultEventCapacity bounds a NewEventLog ring: the oldest events
// evict (counted in Dropped) instead of growing without limit.
const DefaultEventCapacity = 1 << 16

// EventLog is the append-order audit stream, retained in a bounded ring
// (oldest evicted first; Seq stays monotone across eviction, so a reader
// can detect the gap). It is safe for concurrent use; a nil *EventLog
// discards appends.
type EventLog struct {
	mu       sync.Mutex
	buf      []AuditEvent // ring storage; buf[head] is the oldest retained
	head     int
	capacity int    // 0 = unbounded
	seq      uint64 // next sequence number; never reset

	dropped atomic.Int64
}

// NewEventLog creates an audit log bounded at DefaultEventCapacity
// retained events.
func NewEventLog() *EventLog { return &EventLog{capacity: DefaultEventCapacity} }

// NewEventLogWithCapacity creates a log retaining at most n events
// (n <= 0 means unbounded).
func NewEventLogWithCapacity(n int) *EventLog { return &EventLog{capacity: n} }

// SetCapacity re-bounds the ring to n retained events (n <= 0 removes
// the bound). When shrinking, the oldest events beyond the new bound
// are evicted and counted as dropped.
func (l *EventLog) SetCapacity(n int) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	events := l.orderedLocked()
	if n > 0 && len(events) > n {
		l.dropped.Add(int64(len(events) - n))
		events = events[len(events)-n:]
	}
	l.capacity = n
	l.buf = events
	l.head = 0
}

// Dropped returns how many events the ring has evicted over the log's
// lifetime (exported as the obs.dropped.events gauge).
func (l *EventLog) Dropped() int64 {
	if l == nil {
		return 0
	}
	return l.dropped.Load()
}

// Append records one event, assigning its sequence number. Sequence
// numbers are monotone for the log's lifetime — eviction never reuses
// one — so consumers can detect how much of the stream they missed.
func (l *EventLog) Append(typ, actor, detail string, tc TraceContext) {
	if l == nil {
		return
	}
	l.mu.Lock()
	e := AuditEvent{
		Seq:    l.seq,
		Type:   typ,
		Actor:  actor,
		Detail: detail,
		Trace:  tc,
	}
	l.seq++
	if l.capacity > 0 && len(l.buf) >= l.capacity {
		l.buf[l.head] = e
		l.head = (l.head + 1) % len(l.buf)
		l.dropped.Add(1)
	} else {
		l.buf = append(l.buf, e)
	}
	l.mu.Unlock()
}

// orderedLocked returns the retained events oldest-first (l.mu held).
func (l *EventLog) orderedLocked() []AuditEvent {
	out := make([]AuditEvent, 0, len(l.buf))
	out = append(out, l.buf[l.head:]...)
	return append(out, l.buf[:l.head]...)
}

// Events returns a copy of the retained stream in append order.
func (l *EventLog) Events() []AuditEvent {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.orderedLocked()
}

// Len returns the number of retained events.
func (l *EventLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buf)
}

// Audit event codec: tag 0xB1 version 1, following the repo's tagged
// binary wire conventions (u32 length prefixes, big-endian words). The
// layout is frozen — the chaos checker replays persisted streams.
const (
	tagAuditEvent     byte = 0xB1
	auditEventVersion byte = 1
	maxAuditField          = 16 << 20
)

// ErrEventFormat reports malformed audit-event bytes.
var ErrEventFormat = errors.New("obs: malformed audit event")

func appendU32(dst []byte, v uint32) []byte {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	return append(dst, b[:]...)
}

func appendU64(dst []byte, v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return append(dst, b[:]...)
}

func appendStr(dst []byte, s string) []byte {
	dst = appendU32(dst, uint32(len(s)))
	return append(dst, s...)
}

// Encode serializes one event.
func (e AuditEvent) Encode() []byte {
	out := make([]byte, 0, 2+8+3*(4+8)+len(e.Type)+len(e.Actor)+len(e.Detail))
	out = append(out, tagAuditEvent, auditEventVersion)
	out = appendU64(out, e.Seq)
	out = appendStr(out, e.Type)
	out = appendStr(out, e.Actor)
	out = appendStr(out, e.Detail)
	out = appendU64(out, e.Trace.TraceID)
	out = appendU64(out, e.Trace.SpanID)
	return out
}

// eventReader is a minimal sticky-error cursor (obs stays free of repo
// dependencies, so it does not use internal/wirec).
type eventReader struct {
	data []byte
	err  error
}

func (r *eventReader) take(n int) []byte {
	if r.err != nil || n < 0 || len(r.data) < n {
		if r.err == nil {
			r.err = ErrEventFormat
		}
		return nil
	}
	out := r.data[:n]
	r.data = r.data[n:]
	return out
}

func (r *eventReader) u32() uint32 {
	b := r.take(4)
	if r.err != nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (r *eventReader) u64() uint64 {
	b := r.take(8)
	if r.err != nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (r *eventReader) str() string {
	n := r.u32()
	if r.err != nil || n > maxAuditField {
		if r.err == nil {
			r.err = ErrEventFormat
		}
		return ""
	}
	return string(r.take(int(n)))
}

// decodeEvent parses one event from the front of raw, returning the
// remaining bytes.
func decodeEvent(raw []byte) (AuditEvent, []byte, error) {
	if len(raw) < 2 {
		return AuditEvent{}, nil, ErrEventFormat
	}
	if raw[0] != tagAuditEvent || raw[1] != auditEventVersion {
		return AuditEvent{}, nil, fmt.Errorf("%w: tag 0x%02x version %d", ErrEventFormat, raw[0], raw[1])
	}
	rd := &eventReader{data: raw[2:]}
	var e AuditEvent
	e.Seq = rd.u64()
	e.Type = rd.str()
	e.Actor = rd.str()
	e.Detail = rd.str()
	e.Trace.TraceID = rd.u64()
	e.Trace.SpanID = rd.u64()
	if rd.err != nil {
		return AuditEvent{}, nil, rd.err
	}
	return e, rd.data, nil
}

// Encode serializes the whole stream as a concatenation of event
// records (streaming-friendly: a reader can decode a prefix).
func (l *EventLog) Encode() []byte {
	var out []byte
	for _, e := range l.Events() {
		out = append(out, e.Encode()...)
	}
	return out
}

// DecodeEvents parses a concatenated event stream.
func DecodeEvents(raw []byte) ([]AuditEvent, error) {
	var out []AuditEvent
	for len(raw) > 0 {
		e, rest, err := decodeEvent(raw)
		if err != nil {
			return nil, err
		}
		out = append(out, e)
		raw = rest
	}
	return out, nil
}

// Observer bundles the three pillars into the single handle the rest of
// the repo plumbs around. Any field — or the whole observer — may be
// nil; every helper below is nil-safe.
type Observer struct {
	Tracer  *Tracer
	Metrics *Metrics
	Events  *EventLog
}

// NewObserver creates an observer with all three sinks enabled.
func NewObserver() *Observer {
	return &Observer{Tracer: NewTracer(), Metrics: NewMetrics(), Events: NewEventLog()}
}

// StartSpan opens a span on the observer's tracer. With a nil observer
// or tracer the span is nil and the parent context propagates unchanged.
func (o *Observer) StartSpan(name string, parent TraceContext) (*Span, TraceContext) {
	if o == nil {
		return nil, parent
	}
	return o.Tracer.StartSpan(name, parent)
}

// Event appends to the observer's audit log (no-op when disabled).
func (o *Observer) Event(typ, actor, detail string, tc TraceContext) {
	if o == nil {
		return
	}
	o.Events.Append(typ, actor, detail, tc)
}

// M returns the observer's metrics registry (nil when disabled; the nil
// registry hands out nil handles that ignore updates).
func (o *Observer) M() *Metrics {
	if o == nil {
		return nil
	}
	return o.Metrics
}

// PublishDropped copies the tracer's and event log's ring-eviction
// tallies into the obs.dropped.{spans,events} gauges, so exporters see
// at scrape time how much telemetry the rings have shed.
func (o *Observer) PublishDropped() {
	if o == nil || o.Metrics == nil {
		return
	}
	o.Metrics.Gauge("obs.dropped.spans").Set(o.Tracer.Dropped())
	o.Metrics.Gauge("obs.dropped.events").Set(o.Events.Dropped())
}
