package obs

import (
	"sync"
	"testing"
	"time"

	"repro/internal/stats"
)

// TestHistogramQuantilesTrackStats checks the bucketed quantile estimates
// against exact order statistics (internal/stats) on known distributions.
// Exponential buckets double, so an estimate is accepted when it lands
// within the true value's bucket band [v/2, 2v].
func TestHistogramQuantilesTrackStats(t *testing.T) {
	distributions := map[string][]time.Duration{
		"uniform":  nil, // filled below
		"bimodal":  nil,
		"constant": nil,
	}
	var uniform, bimodal, constant []time.Duration
	for i := 1; i <= 1000; i++ {
		uniform = append(uniform, time.Duration(i)*time.Microsecond)
		if i%10 == 0 {
			bimodal = append(bimodal, 50*time.Millisecond) // slow tail
		} else {
			bimodal = append(bimodal, 100*time.Microsecond)
		}
		constant = append(constant, 777*time.Microsecond)
	}
	distributions["uniform"] = uniform
	distributions["bimodal"] = bimodal
	distributions["constant"] = constant

	for name, samples := range distributions {
		h := &Histogram{}
		var secs []float64
		for _, d := range samples {
			h.Observe(d)
			secs = append(secs, d.Seconds())
		}
		if h.Count() != int64(len(samples)) {
			t.Fatalf("%s: count %d, want %d", name, h.Count(), len(samples))
		}
		exactMedian := time.Duration(stats.Median(secs) * float64(time.Second))
		got := h.Quantile(0.5)
		if got < exactMedian/2 || got > exactMedian*2 {
			t.Errorf("%s: p50 = %v, exact median %v (outside bucket band)", name, got, exactMedian)
		}
		snap := h.Snapshot()
		if snap.P50 > snap.P99 || snap.P99 > snap.P999 {
			t.Errorf("%s: quantiles not monotonic: %+v", name, snap)
		}
		exactMean := time.Duration(stats.Mean(secs) * float64(time.Second))
		if snap.Mean < exactMean-time.Microsecond || snap.Mean > exactMean+time.Microsecond {
			t.Errorf("%s: mean %v, exact %v (mean is not bucketed; must match)", name, snap.Mean, exactMean)
		}
	}
}

// TestHistogramTailQuantiles pins the tail behavior on the bimodal case:
// with 10% of observations at 50ms and the rest at 100µs, p99 and p999
// must land in the slow mode's bucket band, p50 in the fast mode's.
func TestHistogramTailQuantiles(t *testing.T) {
	h := &Histogram{}
	for i := 0; i < 1000; i++ {
		if i%10 == 0 {
			h.Observe(50 * time.Millisecond)
		} else {
			h.Observe(100 * time.Microsecond)
		}
	}
	if p50 := h.Quantile(0.5); p50 > 400*time.Microsecond {
		t.Errorf("p50 = %v, want fast-mode value near 100µs", p50)
	}
	for _, q := range []float64{0.99, 0.999} {
		if v := h.Quantile(q); v < 25*time.Millisecond || v > 100*time.Millisecond {
			t.Errorf("q%.3f = %v, want slow-mode value near 50ms", q, v)
		}
	}
}

func TestHistogramEmptyAndOverflow(t *testing.T) {
	h := &Histogram{}
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile not 0")
	}
	h.Observe(-time.Second) // clamps to bucket 0
	h.Observe(1 << 62)      // overflow bucket
	snap := h.Snapshot()
	if snap.Count != 2 {
		t.Fatalf("count = %d, want 2", snap.Count)
	}
	if snap.Max != time.Duration(histBound(histBuckets-1)) {
		t.Fatalf("max bound = %v, want top bucket", snap.Max)
	}
}

// TestMetricsConcurrentWriters hammers one registry from many goroutines;
// the final totals must be exact (run under -race in CI).
func TestMetricsConcurrentWriters(t *testing.T) {
	m := NewMetrics()
	const goroutines = 16
	const perG = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				m.Add("shared.counter", 1)
				m.Counter("shared.counter2").Add(2)
				m.SetGauge("shared.gauge", int64(g))
				m.Histogram("shared.hist").Observe(time.Duration(i) * time.Microsecond)
			}
		}(g)
	}
	wg.Wait()
	if v := m.Counter("shared.counter").Value(); v != goroutines*perG {
		t.Fatalf("counter = %d, want %d", v, goroutines*perG)
	}
	if v := m.Counter("shared.counter2").Value(); v != 2*goroutines*perG {
		t.Fatalf("counter2 = %d, want %d", v, 2*goroutines*perG)
	}
	if n := m.Histogram("shared.hist").Count(); n != goroutines*perG {
		t.Fatalf("histogram count = %d, want %d", n, goroutines*perG)
	}
	snap := m.Snapshot()
	if snap.Counters["shared.counter"] != goroutines*perG {
		t.Fatalf("snapshot counter = %d", snap.Counters["shared.counter"])
	}
	if g := snap.Gauges["shared.gauge"]; g < 0 || g >= goroutines {
		t.Fatalf("gauge = %d, want a goroutine index", g)
	}
}
