package obs

import (
	"sync"
	"testing"
)

func TestTracerRingEviction(t *testing.T) {
	tr := NewTracerWithCapacity(4)
	for i := 0; i < 10; i++ {
		sp, _ := tr.StartSpan("op", TraceContext{})
		sp.End()
	}
	if got := tr.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	if got := tr.Dropped(); got != 6 {
		t.Fatalf("Dropped = %d, want 6", got)
	}
	spans := tr.Spans()
	// Oldest-first order, and span IDs keep the allocator's monotone order
	// across eviction: the four survivors are the last four started.
	for i := 1; i < len(spans); i++ {
		if spans[i].SpanID <= spans[i-1].SpanID {
			t.Fatalf("span IDs out of order after eviction: %d then %d",
				spans[i-1].SpanID, spans[i].SpanID)
		}
	}
	if spans[0].SpanID != 7 || spans[3].SpanID != 10 {
		t.Fatalf("survivors = [%d..%d], want [7..10]", spans[0].SpanID, spans[3].SpanID)
	}
}

func TestTracerSetCapacityShrink(t *testing.T) {
	tr := NewTracerWithCapacity(0) // unbounded
	for i := 0; i < 8; i++ {
		sp, _ := tr.StartSpan("op", TraceContext{})
		sp.End()
	}
	tr.SetCapacity(3)
	if got := tr.Len(); got != 3 {
		t.Fatalf("Len after shrink = %d, want 3", got)
	}
	if got := tr.Dropped(); got != 5 {
		t.Fatalf("Dropped after shrink = %d, want 5", got)
	}
	// The ring keeps working at the new bound.
	sp, _ := tr.StartSpan("op", TraceContext{})
	sp.End()
	if got := tr.Len(); got != 3 {
		t.Fatalf("Len after post-shrink append = %d, want 3", got)
	}
}

func TestEventLogRingEviction(t *testing.T) {
	l := NewEventLogWithCapacity(3)
	for i := 0; i < 7; i++ {
		l.Append(EventFreeze, "actor", "", TraceContext{})
	}
	if got := l.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
	if got := l.Dropped(); got != 4 {
		t.Fatalf("Dropped = %d, want 4", got)
	}
	events := l.Events()
	// Seq stays monotone across eviction — never reset to the ring index.
	want := uint64(4)
	for _, e := range events {
		if e.Seq != want {
			t.Fatalf("Seq = %d, want %d", e.Seq, want)
		}
		want++
	}
}

func TestEventLogSeqMonotoneAcrossSetCapacity(t *testing.T) {
	l := NewEventLogWithCapacity(0)
	for i := 0; i < 5; i++ {
		l.Append(EventFreeze, "a", "", TraceContext{})
	}
	l.SetCapacity(2)
	l.Append(EventFreeze, "a", "", TraceContext{})
	events := l.Events()
	if len(events) != 2 {
		t.Fatalf("Len = %d, want 2", len(events))
	}
	if events[0].Seq != 4 || events[1].Seq != 5 {
		t.Fatalf("Seqs = [%d %d], want [4 5]", events[0].Seq, events[1].Seq)
	}
	if got := l.Dropped(); got != 4 {
		t.Fatalf("Dropped = %d, want 4 (3 on shrink + 1 on append)", got)
	}
}

// TestRingConcurrency hammers small rings from many goroutines; run with
// -race to check the eviction paths.
func TestRingConcurrency(t *testing.T) {
	tr := NewTracerWithCapacity(8)
	l := NewEventLogWithCapacity(8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sp, tc := tr.StartSpan("op", TraceContext{})
				l.Append(EventFreeze, "actor", "", tc)
				sp.End()
				if i%50 == 0 {
					tr.Spans()
					l.Events()
				}
			}
		}()
	}
	wg.Wait()
	if tr.Len() != 8 || l.Len() != 8 {
		t.Fatalf("Len = (%d, %d), want (8, 8)", tr.Len(), l.Len())
	}
	const total = 8 * 200
	if got := tr.Dropped(); got != total-8 {
		t.Fatalf("tracer Dropped = %d, want %d", got, total-8)
	}
	if got := l.Dropped(); got != total-8 {
		t.Fatalf("events Dropped = %d, want %d", got, total-8)
	}
	// Every retained seq is unique and the max equals total appends - 1.
	seen := map[uint64]bool{}
	var max uint64
	for _, e := range l.Events() {
		if seen[e.Seq] {
			t.Fatalf("duplicate Seq %d", e.Seq)
		}
		seen[e.Seq] = true
		if e.Seq > max {
			max = e.Seq
		}
	}
	if max != total-1 {
		t.Fatalf("max Seq = %d, want %d", max, total-1)
	}

	o := &Observer{Tracer: tr, Metrics: NewMetrics(), Events: l}
	o.PublishDropped()
	snap := o.Metrics.Snapshot()
	if snap.Gauges["obs.dropped.spans"] != total-8 || snap.Gauges["obs.dropped.events"] != total-8 {
		t.Fatalf("dropped gauges = %v", snap.Gauges)
	}
}
