package federation

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/transport"
)

// twoPlainSites builds two federated DCs without replica groups (plain
// per-machine counters), for fleet tests where rack semantics are not
// the point.
func twoPlainSites(t *testing.T, cfg transport.WANConfig) (*Federation, *cloud.DataCenter, *cloud.DataCenter, *transport.WANLink) {
	t.Helper()
	f := New("fed")
	dcs := make([]*cloud.DataCenter, 0, 2)
	for _, name := range []string{"dc-a", "dc-b"} {
		dc, err := cloud.NewDataCenter(name, sim.NewInstantLatency())
		if err != nil {
			t.Fatal(err)
		}
		prefix := name[len(name)-1:]
		for i := 1; i <= 3; i++ {
			if _, err := dc.AddMachine(fmt.Sprintf("%s%d", prefix, i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := f.Admit(dc); err != nil {
			t.Fatal(err)
		}
		dcs = append(dcs, dc)
	}
	link, err := f.Connect("dc-a", "dc-b", cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	return f, dcs[0], dcs[1], link
}

// remoteTargets wraps dc-b's machines as fleet remote targets.
func remoteTargets(t *testing.T, dcB *cloud.DataCenter, link string, ids ...string) []fleet.RemoteTarget {
	t.Helper()
	var out []fleet.RemoteTarget
	for _, id := range ids {
		m, ok := dcB.Machine(id)
		if !ok {
			t.Fatalf("unknown machine %s", id)
		}
		out = append(out, fleet.RemoteTarget{Machine: m, Link: link})
	}
	return out
}

// TestCrossDCEvacuation drains a dc-a machine entirely onto dc-b
// machines over the WAN link, with a per-link concurrency cap, and
// verifies counters survive and the journal records the link.
func TestCrossDCEvacuation(t *testing.T) {
	_, dcA, dcB, link := twoPlainSites(t, transport.WANConfig{RTT: time.Millisecond})
	a1, _ := dcA.Machine("a1")

	const apps = 12
	ctrs := make(map[string]int, apps)
	for i := 0; i < apps; i++ {
		name := fmt.Sprintf("tenant-%02d", i)
		app, err := a1.LaunchApp(appImage(name), core.NewMemoryStorage(), core.InitNew)
		if err != nil {
			t.Fatal(err)
		}
		ctr, _, err := app.Library.CreateCounter()
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j <= i%3; j++ {
			if _, err := app.Library.IncrementCounter(ctr); err != nil {
				t.Fatal(err)
			}
		}
		ctrs[name] = ctr
	}

	plan := fleet.Plan{
		Intent:        fleet.IntentEvacuate,
		Sources:       []string{"a1"},
		RemoteTargets: remoteTargets(t, dcB, link.Name(), "b1", "b2", "b3"),
	}
	orch := fleet.New(dcA, fleet.Config{
		Workers: 8,
		LinkCap: map[string]int{link.Name(): 2},
	})
	report, err := orch.Execute(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if report.Completed != apps || report.Failed != 0 {
		t.Fatalf("completed=%d failed=%d, want %d/0\n%s", report.Completed, report.Failed, apps, report)
	}
	for _, e := range report.Journal.Entries() {
		if e.Link != link.Name() {
			t.Fatalf("entry %s has link %q, want %q", e.App, e.Link, link.Name())
		}
		if e.Counters != 1 {
			t.Fatalf("entry %s journals %d counters, want 1", e.App, e.Counters)
		}
	}
	if a1.AppCount() != 0 {
		t.Fatalf("source not drained: %d apps remain", a1.AppCount())
	}
	landed := 0
	for _, m := range dcB.Machines() {
		for _, app := range m.Apps() {
			landed++
			want := uint32(1)
			for i := 0; i < apps; i++ {
				if app.Image().Name == fmt.Sprintf("tenant-%02d", i) {
					want = uint32(i%3 + 1)
				}
			}
			if v, err := app.Library.ReadCounter(ctrs[app.Image().Name]); err != nil || v != want {
				t.Fatalf("%s counter = %d, %v; want %d", app.Image().Name, v, err, want)
			}
		}
	}
	if landed != apps {
		t.Fatalf("%d apps landed in dc-b, want %d", landed, apps)
	}
	if msgs, _ := link.Stats(); msgs == 0 {
		t.Fatal("no traffic crossed the link")
	}
}

// TestCrossDCBatchCompressRatio: a batched cross-DC drain records the
// achieved compression ratio (permille of input) both globally and in a
// per-link histogram family, keyed by the BatchOpts.Link the fleet
// threads through from the plan's RemoteTargets.
func TestCrossDCBatchCompressRatio(t *testing.T) {
	_, dcA, dcB, link := twoPlainSites(t, transport.WANConfig{RTT: time.Millisecond})
	observer := obs.NewObserver()
	dcA.SetObserver(observer)
	a1, _ := dcA.Machine("a1")

	const apps = 6
	for i := 0; i < apps; i++ {
		app, err := a1.LaunchApp(appImage(fmt.Sprintf("zip-%d", i)), core.NewMemoryStorage(), core.InitNew)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := app.Library.CreateCounter(); err != nil {
			t.Fatal(err)
		}
	}

	plan := fleet.Plan{
		Intent:        fleet.IntentEvacuate,
		Sources:       []string{"a1"},
		RemoteTargets: remoteTargets(t, dcB, link.Name(), "b1"),
	}
	orch := fleet.New(dcA, fleet.Config{Workers: 2, BatchSize: 3, Obs: observer})
	report, err := orch.Execute(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if report.Completed != apps || report.Failed != 0 {
		t.Fatalf("completed=%d failed=%d, want %d/0\n%s", report.Completed, report.Failed, apps, report)
	}

	snap := observer.M().Snapshot()
	global, ok := snap.Histograms["wan.compress.ratio"]
	if !ok || global.Count == 0 {
		t.Fatalf("wan.compress.ratio not recorded: %+v", snap.Histograms)
	}
	perLink, ok := snap.Histograms["wan.compress.ratio."+link.Name()]
	if !ok {
		t.Fatalf("per-link family wan.compress.ratio.%s missing: %+v", link.Name(), snap.Histograms)
	}
	if perLink.Count != global.Count {
		t.Errorf("per-link count %d != global count %d (all batches crossed one link)", perLink.Count, global.Count)
	}
	// Ratios are permille of input bytes: >0 always, and even a stored
	// (incompressible) frame only adds a small header, so the highest
	// occupied bucket stays in a sane range.
	if global.Mean <= 0 || global.Max > 2048 {
		t.Errorf("implausible compress ratio: mean=%d max=%d permille", global.Mean, global.Max)
	}
}

// TestWANPartitionDrainParksAndResumes: a cross-DC drain against a
// partitioned link parks every migration safely (sources frozen, data
// held at the source MEs), and after the link heals, ResumeParked
// finishes them at the originally planned remote destinations.
func TestWANPartitionDrainParksAndResumes(t *testing.T) {
	_, dcA, dcB, link := twoPlainSites(t, transport.WANConfig{})
	a1, _ := dcA.Machine("a1")

	const apps = 4
	ctrs := make(map[string]int, apps)
	for i := 0; i < apps; i++ {
		name := fmt.Sprintf("parked-%d", i)
		app, err := a1.LaunchApp(appImage(name), core.NewMemoryStorage(), core.InitNew)
		if err != nil {
			t.Fatal(err)
		}
		ctr, _, err := app.Library.CreateCounter()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := app.Library.IncrementCounter(ctr); err != nil {
			t.Fatal(err)
		}
		ctrs[name] = ctr
	}

	link.SetDown(true)
	plan := fleet.Plan{
		Intent:        fleet.IntentEvacuate,
		Sources:       []string{"a1"},
		RemoteTargets: remoteTargets(t, dcB, link.Name(), "b1"),
	}
	orch := fleet.New(dcA, fleet.Config{
		Workers:      4,
		MaxAttempts:  2,
		RetryBackoff: time.Millisecond,
	})
	report, err := orch.Execute(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if report.Failed != apps || report.Completed != 0 {
		t.Fatalf("partitioned drain: completed=%d failed=%d, want 0/%d", report.Completed, report.Failed, apps)
	}
	// Parked, not lost: every source library is frozen with its data at
	// the source ME.
	for _, app := range a1.Apps() {
		if !app.Library.Frozen() {
			t.Fatalf("%s not frozen after parked migration", app.Image().Name)
		}
		if app.Library.MigrationToken() == nil {
			t.Fatalf("%s has no migration token", app.Image().Name)
		}
	}

	// The link heals; ResumeParked finishes the drain across it.
	link.SetDown(false)
	resumed, err := orch.ResumeParked(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Completed != apps || resumed.Failed != 0 {
		t.Fatalf("resume: completed=%d failed=%d, want %d/0\n%s", resumed.Completed, resumed.Failed, apps, resumed)
	}
	b1, _ := dcB.Machine("b1")
	if b1.AppCount() != apps {
		t.Fatalf("b1 hosts %d apps after resume, want %d", b1.AppCount(), apps)
	}
	for _, app := range b1.Apps() {
		if v, err := app.Library.ReadCounter(ctrs[app.Image().Name]); err != nil || v != 1 {
			t.Fatalf("%s counter = %d, %v; want 1", app.Image().Name, v, err)
		}
	}
}
