package federation

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/pse"
	"repro/internal/sgx"
	"repro/internal/xcrypto"
)

// Fuzz harnesses for the federation decoders, matching the
// internal/pserepl pattern: every decoder consuming bytes from the
// untrusted WAN either errors or returns a value that re-encodes
// canonically — and never panics, whatever the input. Seed corpora live
// in testdata/fuzz/<FuzzName>/ plus the valid encodings added here.

func fuzzSeeds(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0xF1})
	f.Add([]byte{0xF2, 0x01})
	f.Add([]byte{0xF4, 0x01, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add(bytes.Repeat([]byte{0xFF}, 96))
}

func FuzzDecodeGrant(f *testing.F) {
	fuzzSeeds(f)
	if a, err := xcrypto.NewAuthority("seed-dc"); err == nil {
		if cert, err := a.Issue("peer-dc", "federated-authority", a.PublicKey(), time.Hour); err == nil {
			if framed, err := EncodeGrant(cert); err == nil {
				f.Add(framed)
			}
		}
	}
	f.Fuzz(func(t *testing.T, raw []byte) {
		cert, err := DecodeGrant(raw)
		if err != nil {
			return
		}
		// A decoded grant must re-frame successfully (the JSON payload
		// round-trips through the certificate codec).
		if _, err := EncodeGrant(cert); err != nil {
			t.Fatalf("decoded grant does not re-encode: %v", err)
		}
	})
}

func sampleEnsure() *ensureMessage {
	m := &ensureMessage{Slots: []uint8{0, 3, 7}, Nonce: 42}
	m.Owner = sgx.Measurement{1, 2, 3}
	m.ID = [16]byte{9, 9}
	return m
}

func FuzzDecodeEnsureMessage(f *testing.F) {
	fuzzSeeds(f)
	f.Add(sampleEnsure().encode())
	f.Fuzz(func(t *testing.T, raw []byte) {
		m, err := decodeEnsureMessage(raw)
		if err != nil {
			return
		}
		if !bytes.Equal(raw, m.encode()) {
			t.Fatal("canonical re-encoding differs from accepted input")
		}
	})
}

func FuzzDecodeEnsureReply(f *testing.F) {
	fuzzSeeds(f)
	rep := &ensureReply{Status: statusOK, Nonce: 7}
	rep.Bind = pse.UUID{ID: 3, Nonce: [16]byte{4}}
	rep.Pairs = []shadowPair{{Slot: 1, UUID: pse.UUID{ID: 8}}}
	f.Add(rep.encode())
	f.Fuzz(func(t *testing.T, raw []byte) {
		m, err := decodeEnsureReply(raw)
		if err != nil {
			return
		}
		if !bytes.Equal(raw, m.encode()) {
			t.Fatal("canonical re-encoding differs from accepted input")
		}
	})
}

func FuzzDecodePushMessage(f *testing.F) {
	fuzzSeeds(f)
	push := &pushMessage{Version: 5, Record: []byte("sealed-record"), Nonce: 11}
	push.Owner = sgx.Measurement{7}
	push.ID = [16]byte{1}
	push.Bind = pse.UUID{ID: 2, Nonce: [16]byte{3}}
	push.Adv = []counterAdvance{{UUID: pse.UUID{ID: 4}, Value: 9}}
	f.Add(push.encode())
	f.Add((&pushMessage{Version: ^uint32(0), Nonce: 1}).encode()) // tombstone shape
	f.Fuzz(func(t *testing.T, raw []byte) {
		m, err := decodePushMessage(raw)
		if err != nil {
			return
		}
		if !bytes.Equal(raw, m.encode()) {
			t.Fatal("canonical re-encoding differs from accepted input")
		}
	})
}

func FuzzDecodePushReply(f *testing.F) {
	fuzzSeeds(f)
	f.Add((&pushReply{Status: statusOK, Nonce: 3}).encode())
	f.Fuzz(func(t *testing.T, raw []byte) {
		m, err := decodePushReply(raw)
		if err != nil {
			return
		}
		if !bytes.Equal(raw, m.encode()) {
			t.Fatal("canonical re-encoding differs from accepted input")
		}
	})
}
