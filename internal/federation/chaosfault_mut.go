//go:build chaosmut

package federation

// faultSkipMirrorResync, under the chaosmut build tag, makes syncOne
// silently skip any instance the partner already shadows: the first sync
// of an instance proceeds (the partner gets a record at all), but every
// re-sync after it — the mechanism that keeps shadow values current and
// bounds the paper's value RPO — is dropped while Flush still reports
// success. A forced cross-site failover then resurrects values from the
// first sync, older than the last "successful" flush promises, and two
// independent watchdogs must convict: the chaos checker (monotone
// rollback below the flush floor) and the mirror health detector (a
// successful flush that pushed no records while live instances exist).
// Never enabled in normal builds.
const faultSkipMirrorResync = true
