// Package federation joins mutually-distrusting data centers into one
// migration domain: provider cross-certification (scoped, revocable
// trust grants), WAN links bridging the sites' networks with RTT/
// bandwidth/loss economics, escrow mirroring so a rack's recoverable
// state survives the loss of the whole rack — or the whole site — and
// the cross-datacenter variant of machine recovery, with the binding-
// counter win still arbitrating exactly-one resurrection.
//
// Trust model: the federation layer is management plane, like cloud and
// fleet — it adds no trust to the migration protocol itself (MEs still
// mutually attest and authenticate through the scoped grants). The one
// trusted component it introduces is the mirror agent: the entity that
// re-wraps escrow records from the origin rack's escrow key to the
// partner rack's. It is modeled as an agent enclave provisioned with
// both racks' escrow keys during federation setup, exactly like replica
// agents hold group keys; everything it sends crosses the WAN sealed
// under a per-partnership link key.
package federation

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/pse"
	"repro/internal/sgx"
	"repro/internal/wirec"
	"repro/internal/xcrypto"
)

// ErrWireFormat reports malformed federation wire bytes.
var ErrWireFormat = errors.New("federation: malformed federation message")

// Wire type tags (0xF* block: federation).
const (
	tagGrant       byte = 0xF1
	tagEnsure      byte = 0xF2
	tagEnsureReply byte = 0xF3
	tagPush        byte = 0xF4
	tagPushReply   byte = 0xF5
)

// wireVersion is the federation wire format version, bumped on layout
// changes so messages from a different build are rejected cleanly.
const wireVersion byte = 1

// Message kinds on the transport.Messenger.
const (
	kindEnsure = "fed-ensure"
	kindPush   = "fed-push"
)

// Mirror reply statuses.
const (
	statusOK byte = iota + 1
	statusRefused
	// statusObsolete: the instance's shadow binding was consumed at the
	// partner (a cross-DC recovery resurrected it there); the partner's
	// copy is now the live instance and this mirror direction is done
	// with it.
	statusObsolete
)

// maxGrantBytes bounds an encoded trust-grant certificate (a small JSON
// structure; the bound only defends the decoder).
const maxGrantBytes = 1 << 16

// EncodeGrant frames a federation trust grant (the certificate provider
// A's authority issued over provider B's authority key) for transfer
// between the two operators' control planes.
func EncodeGrant(grant *xcrypto.Certificate) ([]byte, error) {
	if grant == nil {
		return nil, fmt.Errorf("%w: nil grant", ErrWireFormat)
	}
	raw, err := grant.Encode()
	if err != nil {
		return nil, fmt.Errorf("encode grant: %w", err)
	}
	if len(raw) > maxGrantBytes {
		return nil, fmt.Errorf("%w: grant too large", ErrWireFormat)
	}
	out := make([]byte, 0, 2+4+len(raw))
	out = wirec.AppendHeader(out, tagGrant, wireVersion)
	return wirec.AppendBytes(out, raw), nil
}

// DecodeGrant parses a framed trust grant. The certificate's signature,
// scope, and revocation status are NOT checked here — that is
// attest.Provider.AcceptGrant's job (and re-done per handshake).
func DecodeGrant(raw []byte) (*xcrypto.Certificate, error) {
	rd := wirec.NewReader(raw)
	if !rd.Header(tagGrant, wireVersion) {
		return nil, fmt.Errorf("%w: %v", ErrWireFormat, rd.Err())
	}
	body := rd.Bytes()
	if err := rd.Done(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrWireFormat, err)
	}
	if len(body) > maxGrantBytes {
		return nil, fmt.Errorf("%w: grant too large", ErrWireFormat)
	}
	cert, err := xcrypto.DecodeCertificate(body)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrWireFormat, err)
	}
	return cert, nil
}

// ensureMessage asks the partner site to provision (or report) the
// shadow binding counter and shadow app counters for one mirrored
// enclave instance.
type ensureMessage struct {
	Owner sgx.Measurement
	ID    [16]byte
	// Slots lists the active counter slots at the origin that need a
	// shadow at the partner.
	Slots []uint8
	Nonce uint64
}

func (m *ensureMessage) encode() []byte {
	out := make([]byte, 0, 2+32+16+4+len(m.Slots)+8)
	out = wirec.AppendHeader(out, tagEnsure, wireVersion)
	out = append(out, m.Owner[:]...)
	out = append(out, m.ID[:]...)
	out = wirec.AppendU32(out, uint32(len(m.Slots)))
	out = append(out, m.Slots...)
	return wirec.AppendU64(out, m.Nonce)
}

func decodeEnsureMessage(raw []byte) (*ensureMessage, error) {
	var m ensureMessage
	rd := wirec.NewReader(raw)
	if !rd.Header(tagEnsure, wireVersion) {
		return nil, fmt.Errorf("%w: %v", ErrWireFormat, rd.Err())
	}
	copy(m.Owner[:], rd.Take(32))
	copy(m.ID[:], rd.Take(16))
	n := rd.U32()
	if n > core.NumCounters {
		return nil, fmt.Errorf("%w: %d slots", ErrWireFormat, n)
	}
	if b := rd.Take(int(n)); b != nil {
		m.Slots = append([]uint8(nil), b...)
	}
	m.Nonce = rd.U64()
	if err := rd.Done(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrWireFormat, err)
	}
	for _, s := range m.Slots {
		if int(s) >= core.NumCounters {
			return nil, fmt.Errorf("%w: slot %d out of range", ErrWireFormat, s)
		}
	}
	return &m, nil
}

// shadowPair maps one origin counter slot to its partner-side shadow.
type shadowPair struct {
	Slot uint8
	UUID pse.UUID
}

// shadowPairSize is the encoded size of one shadowPair.
const shadowPairSize = 1 + 4 + 16

// ensureReply reports the partner's shadow binding and counter UUIDs.
type ensureReply struct {
	Status byte
	Bind   pse.UUID
	Pairs  []shadowPair
	Nonce  uint64
}

func (m *ensureReply) encode() []byte {
	out := make([]byte, 0, 2+1+4+16+4+len(m.Pairs)*shadowPairSize+8)
	out = wirec.AppendHeader(out, tagEnsureReply, wireVersion)
	out = append(out, m.Status)
	out = wirec.AppendU32(out, m.Bind.ID)
	out = append(out, m.Bind.Nonce[:]...)
	out = wirec.AppendU32(out, uint32(len(m.Pairs)))
	for i := range m.Pairs {
		out = append(out, m.Pairs[i].Slot)
		out = wirec.AppendU32(out, m.Pairs[i].UUID.ID)
		out = append(out, m.Pairs[i].UUID.Nonce[:]...)
	}
	return wirec.AppendU64(out, m.Nonce)
}

func decodeEnsureReply(raw []byte) (*ensureReply, error) {
	var m ensureReply
	rd := wirec.NewReader(raw)
	if !rd.Header(tagEnsureReply, wireVersion) {
		return nil, fmt.Errorf("%w: %v", ErrWireFormat, rd.Err())
	}
	m.Status = rd.U8()
	m.Bind.ID = rd.U32()
	copy(m.Bind.Nonce[:], rd.Take(16))
	n := rd.U32()
	if n > core.NumCounters {
		return nil, fmt.Errorf("%w: %d shadow pairs", ErrWireFormat, n)
	}
	if rd.Err() == nil && n > 0 {
		if !rd.CanHold(n, shadowPairSize) {
			return nil, fmt.Errorf("%w: %d pairs in %d bytes", ErrWireFormat, n, rd.Remaining())
		}
		m.Pairs = make([]shadowPair, 0, n)
	}
	for i := uint32(0); i < n; i++ {
		var p shadowPair
		p.Slot = rd.U8()
		p.UUID.ID = rd.U32()
		copy(p.UUID.Nonce[:], rd.Take(16))
		if rd.Err() != nil {
			break
		}
		m.Pairs = append(m.Pairs, p)
	}
	m.Nonce = rd.U64()
	if err := rd.Done(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrWireFormat, err)
	}
	if m.Status < statusOK || m.Status > statusObsolete {
		return nil, fmt.Errorf("%w: unknown status %d", ErrWireFormat, m.Status)
	}
	return &m, nil
}

// counterAdvance raises one shadow counter to at least Value.
type counterAdvance struct {
	UUID  pse.UUID
	Value uint32
}

// counterAdvanceSize is the encoded size of one counterAdvance.
const counterAdvanceSize = 4 + 16 + 4

// pushMessage delivers one re-wrapped escrow record (plus the shadow
// counter advances that make its values current) to the partner site.
// A Record of nil with Version == pserepl.EscrowTombstoneVersion
// propagates a decommission: the partner destroys its shadows and
// tombstones its copy.
type pushMessage struct {
	Owner   sgx.Measurement
	ID      [16]byte
	Version uint32
	Bind    pse.UUID // the SHADOW binding the record was re-bound to
	Record  []byte
	Adv     []counterAdvance
	Nonce   uint64
}

func (m *pushMessage) encode() []byte {
	out := make([]byte, 0, 2+32+16+4+4+16+4+len(m.Record)+4+len(m.Adv)*counterAdvanceSize+8)
	out = wirec.AppendHeader(out, tagPush, wireVersion)
	out = append(out, m.Owner[:]...)
	out = append(out, m.ID[:]...)
	out = wirec.AppendU32(out, m.Version)
	out = wirec.AppendU32(out, m.Bind.ID)
	out = append(out, m.Bind.Nonce[:]...)
	out = wirec.AppendBytes(out, m.Record)
	out = wirec.AppendU32(out, uint32(len(m.Adv)))
	for i := range m.Adv {
		out = wirec.AppendU32(out, m.Adv[i].UUID.ID)
		out = append(out, m.Adv[i].UUID.Nonce[:]...)
		out = wirec.AppendU32(out, m.Adv[i].Value)
	}
	return wirec.AppendU64(out, m.Nonce)
}

func decodePushMessage(raw []byte) (*pushMessage, error) {
	var m pushMessage
	rd := wirec.NewReader(raw)
	if !rd.Header(tagPush, wireVersion) {
		return nil, fmt.Errorf("%w: %v", ErrWireFormat, rd.Err())
	}
	copy(m.Owner[:], rd.Take(32))
	copy(m.ID[:], rd.Take(16))
	m.Version = rd.U32()
	m.Bind.ID = rd.U32()
	copy(m.Bind.Nonce[:], rd.Take(16))
	m.Record = rd.Bytes()
	n := rd.U32()
	if n > core.NumCounters+1 {
		return nil, fmt.Errorf("%w: %d advances", ErrWireFormat, n)
	}
	if rd.Err() == nil && n > 0 {
		if !rd.CanHold(n, counterAdvanceSize) {
			return nil, fmt.Errorf("%w: %d advances in %d bytes", ErrWireFormat, n, rd.Remaining())
		}
		m.Adv = make([]counterAdvance, 0, n)
	}
	for i := uint32(0); i < n; i++ {
		var a counterAdvance
		a.UUID.ID = rd.U32()
		copy(a.UUID.Nonce[:], rd.Take(16))
		a.Value = rd.U32()
		if rd.Err() != nil {
			break
		}
		m.Adv = append(m.Adv, a)
	}
	m.Nonce = rd.U64()
	if err := rd.Done(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrWireFormat, err)
	}
	return &m, nil
}

// pushReply acknowledges a mirror push.
type pushReply struct {
	Status byte
	Nonce  uint64
}

func (m *pushReply) encode() []byte {
	out := make([]byte, 0, 2+1+8)
	out = wirec.AppendHeader(out, tagPushReply, wireVersion)
	out = append(out, m.Status)
	return wirec.AppendU64(out, m.Nonce)
}

func decodePushReply(raw []byte) (*pushReply, error) {
	var m pushReply
	rd := wirec.NewReader(raw)
	if !rd.Header(tagPushReply, wireVersion) {
		return nil, fmt.Errorf("%w: %v", ErrWireFormat, rd.Err())
	}
	m.Status = rd.U8()
	m.Nonce = rd.U64()
	if err := rd.Done(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrWireFormat, err)
	}
	if m.Status < statusOK || m.Status > statusObsolete {
		return nil, fmt.Errorf("%w: unknown status %d", ErrWireFormat, m.Status)
	}
	return &m, nil
}

// aadReq and aadRep bind a sealed mirror payload to its direction and
// kind, so recorded traffic cannot be replayed as a reply or under a
// different kind (the pserepl convention).
func aadReq(kind, partnership string) []byte { return []byte("fed-req/" + kind + "/" + partnership) }
func aadRep(kind, partnership string) []byte { return []byte("fed-rep/" + kind + "/" + partnership) }
