package federation

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/transport"
)

// spanNames collects the names present in a trace's span slice.
func spanNames(spans []obs.Span) map[string]int {
	names := make(map[string]int, len(spans))
	for _, s := range spans {
		names[s.Name]++
	}
	return names
}

// TestCrossDCMigrationSingleTrace is the tracing acceptance test: one
// trace ID follows a migration from the source library's freeze, through
// the WAN hop between provider domains, to the destination library's
// resume — every protocol leg is a span in the same trace.
func TestCrossDCMigrationSingleTrace(t *testing.T) {
	fed, dcA, dcB, _ := twoSites(t, transport.WANConfig{RTT: time.Millisecond})
	observer := obs.NewObserver()
	fed.SetObserver(observer)
	dcA.SetObserver(observer)
	dcB.SetObserver(observer)

	a1, _ := dcA.Machine("a1")
	b1, _ := dcB.Machine("b1")
	app, ctr, _ := launchLedger(t, a1, "traced")

	if err := app.Library.StartMigration(b1.MEAddress()); err != nil {
		t.Fatalf("cross-DC StartMigration: %v", err)
	}
	moved, err := b1.LaunchApp(appImage("traced"), core.NewMemoryStorage(), core.InitMigrated)
	if err != nil {
		t.Fatalf("cross-DC restore: %v", err)
	}
	if v, err := moved.Library.ReadCounter(ctr); err != nil || v != 7 {
		t.Fatalf("migrated counter = %d, %v; want 7", v, err)
	}

	// Find the trace rooted at the source freeze and walk it.
	var migration []obs.Span
	for _, spans := range observer.Tracer.ByTrace() {
		for _, s := range spans {
			if s.Name == "lib.freeze" {
				migration = spans
			}
		}
	}
	if migration == nil {
		t.Fatal("no trace contains a lib.freeze span")
	}
	names := spanNames(migration)
	for _, want := range []string{
		"lib.freeze",              // source: counters frozen, state sealed
		"me.migrate-out",          // source ME accepts the outbound record
		"me.transfer",             // source ME drives the Fig. 2 exchange
		"wan.hop",                 // the data crossed the inter-DC link
		"me.handle-migrate-offer", // destination ME: offer leg
		"me.handle-migrate-data",  // destination ME: data leg
		"lib.resume",              // destination: library restored
	} {
		if names[want] == 0 {
			t.Errorf("migration trace missing span %q (have %v)", want, names)
		}
	}
	// Cross-DC means at least two WAN hops (offer + data), each a span
	// in the SAME trace — the envelope survived the link.
	if names["wan.hop"] < 2 {
		t.Errorf("only %d wan.hop spans in the migration trace, want >= 2", names["wan.hop"])
	}
	// Every span belongs to one trace and all parents resolve within it.
	ids := map[uint64]bool{0: true}
	for _, s := range migration {
		ids[s.SpanID] = true
	}
	for _, s := range migration {
		if !ids[s.ParentID] {
			t.Errorf("span %s has dangling parent %d", s.Name, s.ParentID)
		}
	}

	// The freeze audit event is stamped with the same trace.
	traceID := migration[0].TraceID
	var frozen bool
	for _, e := range observer.Events.Events() {
		if e.Type == obs.EventFreeze && e.Trace.TraceID == traceID {
			frozen = true
		}
	}
	if !frozen {
		t.Errorf("no %s audit event carries trace %x", obs.EventFreeze, traceID)
	}
}
