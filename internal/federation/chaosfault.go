//go:build !chaosmut

package federation

// faultSkipMirrorResync gates the chaos mutation self-test's injected
// mirror fault (see chaosfault_mut.go). In normal builds it is a false
// constant, so the compiler removes the gated branch — the production
// sync path is byte-for-byte unaffected.
const faultSkipMirrorResync = false
