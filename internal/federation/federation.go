package federation

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cloud"
	"repro/internal/obs"
	"repro/internal/pse"
	"repro/internal/pserepl"
	"repro/internal/sgx"
	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/xcrypto"
)

// Federation errors.
var (
	// ErrUnknownDC reports a data center the federation has not admitted.
	ErrUnknownDC = errors.New("federation: unknown data center")
	// ErrNotConnected reports an operation between two data centers that
	// have no WAN link (Connect first).
	ErrNotConnected = errors.New("federation: data centers are not connected")
	// ErrNotPartnered reports a cross-DC recovery between racks that
	// have no escrow mirror (PartnerGroups first).
	ErrNotPartnered = errors.New("federation: racks are not escrow partners")
	// ErrOriginUnreachable reports a cross-DC recovery that could not
	// arbitrate against the origin site's binding counter (site down or
	// partitioned) and was not forced. Forcing skips the origin win and
	// queues a revocation instead — the operator's declaration that the
	// site is lost (a forced failover).
	ErrOriginUnreachable = errors.New("federation: origin site unreachable; use force to declare it lost")
	// ErrOriginAlive reports a cross-DC recovery that captured the
	// origin binding above the mirrored version: the original was alive
	// and persisting — the §V-D guard against resurrecting a running
	// instance tripped after the fact.
	ErrOriginAlive = errors.New("federation: origin binding advanced past the mirror; original instance was alive")
)

// grantTTL is the default lifetime of federation trust grants.
const grantTTL = 365 * 24 * time.Hour

// pairKey orders two DC names canonically.
func pairKey(a, b string) string {
	if a > b {
		a, b = b, a
	}
	return a + "~" + b
}

// partnership names one directed escrow-mirroring relation.
func partnershipName(fromDC, fromGroup, toDC, toGroup string) string {
	return fromDC + "/" + fromGroup + ">" + toDC + "/" + toGroup
}

// revocation is a queued destruction of an origin-site binding counter,
// created by a forced (site-loss) cross-DC recovery and retired by
// Reconcile once the origin site is reachable again.
type revocation struct {
	dc    string
	group string
	owner sgx.Measurement
	uuid  pse.UUID
}

// Federation joins admitted data centers into one migration domain. It
// owns the inter-DC inventory, the WAN links, the provider
// cross-certification performed at Connect, the escrow mirrors created
// by PartnerGroups, and the cross-DC variant of machine recovery. Like
// cloud and fleet it is management plane: nothing in the migration
// protocol trusts it.
type Federation struct {
	name string

	mu      sync.Mutex
	dcs     map[string]*cloud.DataCenter
	links   map[string]*transport.WANLink // by pairKey
	mirrors map[string]*Mirror            // by partnershipName
	revokes []revocation
	obs     atomic.Pointer[obs.Observer]
}

// SetObserver installs a telemetry observer on the federation's own
// control plane: WAN links get per-hop spans, mirrors get push spans and
// in-band trace propagation, and federation-level security transitions
// (grant revocation, forced site-loss failover) land in the audit
// stream. Admitted data centers keep their own observers — call
// cloud.DataCenter.SetObserver per site (usually with the same observer).
func (f *Federation) SetObserver(o *obs.Observer) {
	f.obs.Store(o)
	f.mu.Lock()
	links := make([]*transport.WANLink, 0, len(f.links))
	for _, l := range f.links {
		links = append(links, l)
	}
	mirrors := make([]*Mirror, 0, len(f.mirrors))
	for _, m := range f.mirrors {
		mirrors = append(mirrors, m)
	}
	f.mu.Unlock()
	for _, l := range links {
		l.SetObserver(o)
	}
	for _, m := range mirrors {
		m.SetObserver(o)
	}
}

// actor names the federation in audit events.
func (f *Federation) actor() string { return "federation:" + f.name }

// New creates an empty federation.
func New(name string) *Federation {
	return &Federation{
		name:    name,
		dcs:     make(map[string]*cloud.DataCenter),
		links:   make(map[string]*transport.WANLink),
		mirrors: make(map[string]*Mirror),
	}
}

// Name returns the federation name.
func (f *Federation) Name() string { return f.name }

// Admit registers a data center with the federation.
func (f *Federation) Admit(dc *cloud.DataCenter) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, dup := f.dcs[dc.Name()]; dup {
		return fmt.Errorf("federation: data center %q already admitted", dc.Name())
	}
	f.dcs[dc.Name()] = dc
	return nil
}

// DataCenter returns an admitted data center.
func (f *Federation) DataCenter(name string) (*cloud.DataCenter, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	dc, ok := f.dcs[name]
	return dc, ok
}

// Machines returns the federation-wide inventory: every machine of
// every admitted data center, sorted by (DC, machine ID).
func (f *Federation) Machines() []*cloud.Machine {
	f.mu.Lock()
	names := make([]string, 0, len(f.dcs))
	for n := range f.dcs {
		names = append(names, n)
	}
	dcs := make([]*cloud.DataCenter, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		dcs = append(dcs, f.dcs[n])
	}
	f.mu.Unlock()
	var out []*cloud.Machine
	for _, dc := range dcs {
		out = append(out, dc.Machines()...)
	}
	return out
}

// Connect federates two admitted data centers: their providers
// cross-certify (each issues, transfers in encoded form, and installs a
// scoped trust grant for the other's authority), each site's IAS learns
// the peer's EPID group issuer, and a WAN link with the given economics
// bridges the two networks, exporting every current machine's Migration
// Enclave address both ways (machines added later are exported with
// ExportMachine). Returns the link.
func (f *Federation) Connect(aName, bName string, cfg transport.WANConfig) (*transport.WANLink, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	a, ok := f.dcs[aName]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownDC, aName)
	}
	b, ok := f.dcs[bName]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownDC, bName)
	}
	key := pairKey(aName, bName)
	if _, dup := f.links[key]; dup {
		return nil, fmt.Errorf("federation: %s and %s already connected", aName, bName)
	}

	// Cross-certification, through the wire form the operators would
	// actually exchange (and the fuzz harnesses cover).
	if err := crossCertify(a, b); err != nil {
		return nil, err
	}
	if err := crossCertify(b, a); err != nil {
		return nil, err
	}
	a.IAS.TrustIssuer(b.Issuer.Name(), b.Issuer.PublicKey(), b.Issuer.IsRevoked)
	b.IAS.TrustIssuer(a.Issuer.Name(), a.Issuer.PublicKey(), a.Issuer.IsRevoked)

	link := transport.NewWANLink(key, a.Messenger, b.Messenger, cfg)
	for _, m := range a.Machines() {
		if err := link.Export(transport.SideA, m.MEAddress()); err != nil {
			return nil, err
		}
	}
	for _, m := range b.Machines() {
		if err := link.Export(transport.SideB, m.MEAddress()); err != nil {
			return nil, err
		}
	}
	link.SetObserver(f.obs.Load())
	f.links[key] = link
	return link, nil
}

// crossCertify has `granting` issue and install a trust grant for
// `peer`'s authority, exercising the encoded grant form end to end. The
// peer authority's revocation feed is wired into the installed grant,
// so the peer operator's own per-machine ME revocations are honored at
// this site too (not just whole-federation revocation).
func crossCertify(granting, peer *cloud.DataCenter) error {
	grant, err := granting.Provider.GrantFederation(
		peer.Provider.Name(), peer.Provider.Authority().PublicKey(), grantTTL)
	if err != nil {
		return err
	}
	framed, err := EncodeGrant(grant)
	if err != nil {
		return err
	}
	decoded, err := DecodeGrant(framed)
	if err != nil {
		return err
	}
	return granting.Provider.AcceptGrant(decoded, peer.Provider.Authority().IsRevoked)
}

// Link returns the WAN link between two connected data centers.
func (f *Federation) Link(aName, bName string) (*transport.WANLink, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	l, ok := f.links[pairKey(aName, bName)]
	return l, ok
}

// ExportMachine exports a machine added after Connect over the link to
// the named peer data center.
func (f *Federation) ExportMachine(dcName, peerName, machineID string) error {
	f.mu.Lock()
	dc, ok := f.dcs[dcName]
	link, lok := f.links[pairKey(dcName, peerName)]
	f.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownDC, dcName)
	}
	if !lok {
		return fmt.Errorf("%w: %s and %s", ErrNotConnected, dcName, peerName)
	}
	m, ok := dc.Machine(machineID)
	if !ok {
		return fmt.Errorf("federation: unknown machine %q in %s", machineID, dcName)
	}
	return link.Export(f.sideOf(link, dcName, peerName), m.MEAddress())
}

// sideOf returns which WANLink side a DC is on (links are created with
// the lexically smaller name as side A).
func (f *Federation) sideOf(_ *transport.WANLink, dcName, peerName string) int {
	if dcName < peerName {
		return transport.SideA
	}
	return transport.SideB
}

// Disconnect severs the federation between two data centers: both
// providers revoke their trust grants (immediately failing every
// cross-DC handshake), both IAS instances drop the peer issuer, and the
// link is marked down. Mirrors between the sites stop syncing (their
// pushes fail at the downed link).
func (f *Federation) Disconnect(aName, bName string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	a, aok := f.dcs[aName]
	b, bok := f.dcs[bName]
	if !aok || !bok {
		return fmt.Errorf("%w: %s / %s", ErrUnknownDC, aName, bName)
	}
	link, ok := f.links[pairKey(aName, bName)]
	if !ok {
		return fmt.Errorf("%w: %s and %s", ErrNotConnected, aName, bName)
	}
	a.Provider.RevokeFederation(b.Provider.Name())
	b.Provider.RevokeFederation(a.Provider.Name())
	a.IAS.DistrustIssuer(b.Issuer.Name())
	b.IAS.DistrustIssuer(a.Issuer.Name())
	link.SetDown(true)
	f.obs.Load().Event(obs.EventGrantRevoked, f.actor(),
		fmt.Sprintf("federation severed: %s and %s revoked trust grants; link down", aName, bName),
		obs.TraceContext{})
	return nil
}

// PartnerGroups establishes a directed escrow mirror: the origin rack
// (originDC/originGroup) asynchronously re-wraps its escrow records for
// the partner rack (destDC/destGroup) and pushes them — with shadow
// binding and app counters advanced at the partner — over the WAN link,
// making every escrowed enclave of the origin rack recoverable at the
// partner even after the loss of the whole origin rack or site.
//
// Mirror one direction per rack pair: partnering the same two racks in
// both directions would re-mirror each site's shadow records back.
func (f *Federation) PartnerGroups(originDC, originGroup, destDC, destGroup string) (*Mirror, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	a, ok := f.dcs[originDC]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownDC, originDC)
	}
	b, ok := f.dcs[destDC]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownDC, destDC)
	}
	link, ok := f.links[pairKey(originDC, destDC)]
	if !ok {
		return nil, fmt.Errorf("%w: %s and %s", ErrNotConnected, originDC, destDC)
	}
	gA, ok := a.ReplicaGroup(originGroup)
	if !ok {
		return nil, fmt.Errorf("federation: unknown group %q in %s", originGroup, originDC)
	}
	gB, ok := b.ReplicaGroup(destGroup)
	if !ok {
		return nil, fmt.Errorf("federation: unknown group %q in %s", destGroup, destDC)
	}
	name := partnershipName(originDC, originGroup, destDC, destGroup)
	if _, dup := f.mirrors[name]; dup {
		return nil, fmt.Errorf("federation: %s already partnered", name)
	}

	// The partnership link key: provisioned in-process to both halves of
	// the mirror agent, like every other setup-phase key in the repo.
	keyBytes, err := xcrypto.RandomBytes(32)
	if err != nil {
		return nil, fmt.Errorf("partnership key: %w", err)
	}
	sealer, err := xcrypto.NewSealer(keyBytes)
	if err != nil {
		return nil, fmt.Errorf("partnership sealer: %w", err)
	}
	epAddr := transport.Address("fed-mirror/" + name)
	ep, err := newMirrorEndpoint(name, gB, sealer, b.Messenger, epAddr)
	if err != nil {
		return nil, err
	}
	// The endpoint lives at the destination; the origin-side pusher must
	// reach it across the WAN.
	if err := link.Export(f.sideOf(link, destDC, originDC), epAddr); err != nil {
		return nil, err
	}
	m := newMirror(name, gA, gB.EscrowSealer(), a.Messenger, epAddr, sealer)
	m.ep = ep
	m.SetObserver(f.obs.Load())
	f.mirrors[name] = m
	return m, nil
}

// mirrorFor finds the mirror from the dead machine's rack to the
// recovery target's rack.
func (f *Federation) mirrorFor(originDC, originGroup, destDC, destGroup string) (*Mirror, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	m, ok := f.mirrors[partnershipName(originDC, originGroup, destDC, destGroup)]
	return m, ok
}

// RecoverMachine is the cross-datacenter variant of
// cloud.DataCenter.RecoverMachine: it resurrects a dead machine's
// escrowed enclaves in the PEER data center, on targetID, from the
// partner rack's mirrored escrow records — counters (at their mirrored
// values) and app state intact.
//
// Exactly-one resurrection is still arbitrated by a binding-counter
// win. With the origin site reachable (force=false) the recovery first
// consumes the ORIGIN binding at exactly the mirrored version — the
// same counter a local recovery or the live original would use, so of
// any set of racers across both sites exactly one wins — then wins the
// partner's shadow binding through the standard Library.Recover
// protocol. With force=true (the operator's declaration that the origin
// site is lost) the origin win is skipped: the shadow binding alone
// arbitrates among partner-side racers, and a revocation of the origin
// binding is queued so Reconcile fails the originals closed
// (ErrRecoveredAway) as soon as the origin site comes back. Between a
// forced recovery and that reconciliation a revived origin site could
// briefly run a zombie — the federation-scale instance of the §V-D
// management-plane judgment the paper already makes for redirects, and
// the reason force is an explicit operator act.
//
// Shadow counter values trail the origin by the mirror lag: a forced
// recovery restores the last mirrored values (the disclosed RPO of
// asynchronous cross-site replication). An unforced recovery refuses a
// lagging mirror outright (ErrMirrorStale) — Flush the mirror and
// retry, so the both-sites-alive path never rolls anything back.
func (f *Federation) RecoverMachine(deadDC, deadID, destDC, targetID string, force bool) ([]*cloud.App, error) {
	a, ok := f.DataCenter(deadDC)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownDC, deadDC)
	}
	b, ok := f.DataCenter(destDC)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownDC, destDC)
	}
	dead, ok := a.Machine(deadID)
	if !ok {
		return nil, fmt.Errorf("federation: unknown machine %q in %s", deadID, deadDC)
	}
	target, ok := b.Machine(targetID)
	if !ok {
		return nil, fmt.Errorf("federation: unknown machine %q in %s", targetID, destDC)
	}
	if dead.Alive() {
		return nil, fmt.Errorf("%w: %s", cloud.ErrMachineUp, deadID)
	}
	if !target.Alive() {
		return nil, fmt.Errorf("%w: %s", cloud.ErrMachineDown, targetID)
	}
	gA, gB := dead.Group(), target.Group()
	if gA == nil || gB == nil {
		return nil, fmt.Errorf("%w: %s -> %s", ErrNotPartnered, deadID, targetID)
	}
	mirror, ok := f.mirrorFor(deadDC, gA.Name(), destDC, gB.Name())
	if !ok {
		return nil, fmt.Errorf("%w: %s/%s -> %s/%s", ErrNotPartnered, deadDC, gA.Name(), destDC, gB.Name())
	}
	link, _ := f.Link(deadDC, destDC)

	var recovered []*cloud.App
	var errs []error
	for _, la := range dead.LostApps() {
		if !la.Escrowed {
			continue
		}
		app, err := f.recoverOne(mirror, gA, gB, target, la, force, deadDC, link)
		if err != nil {
			errs = append(errs, fmt.Errorf("recover %s on %s/%s: %w", la.Image.Name, destDC, targetID, err))
			continue
		}
		dead.DropLost(la.EscrowID)
		recovered = append(recovered, app)
	}
	return recovered, errors.Join(errs...)
}

// recoverOne runs the cross-DC resurrection of one lost app.
func (f *Federation) recoverOne(mirror *Mirror, gA, gB *pserepl.Group, target *cloud.Machine, la cloud.LostApp, force bool, originDCName string, link *transport.WANLink) (*cloud.App, error) {
	owner := la.Image.Measure()
	k := instanceKey{owner: owner, id: la.EscrowID}
	sp, tc := f.obs.Load().StartSpan("fed.recover", obs.TraceContext{})
	if sp != nil {
		sp.Site = f.name
		defer sp.End()
	}
	// Each origin-side arbitration exchange is a control-plane round
	// trip across the WAN from the recovering site's operator; charge it
	// on the link so kill-to-recovered latency scales with RTT honestly.
	chargeWAN := func() {
		if link != nil {
			link.Latency().Charge(sim.OpWANHop)
		}
	}

	// The partner must hold a mirrored record at all.
	verM, _, _, err := gB.EscrowGet(owner, la.EscrowID)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNotMirrored, err)
	}

	info, known := mirror.originBinding(k)
	switch {
	case known && info.consumed:
		// A previous cross-DC attempt already consumed the origin
		// binding (e.g. the partner-side step then failed transiently);
		// only the shadow win remains.
	case force:
		// Operator-declared site loss: skip the origin win, queue the
		// revocation so Reconcile fails the originals closed when the
		// site returns.
		if known {
			f.mu.Lock()
			f.revokes = append(f.revokes, revocation{dc: originDCName, group: gA.Name(), owner: owner, uuid: info.bind})
			f.mu.Unlock()
		}
		f.obs.Load().Event(obs.EventSiteLossFailover, f.actor(),
			fmt.Sprintf("forced failover of %s (escrow %x) from lost site %s to %s",
				la.Image.Name, la.EscrowID[:4], originDCName, target.ID()),
			tc)
	default:
		if !known {
			return nil, fmt.Errorf("%w: no origin binding registered", ErrNotMirrored)
		}
		chargeWAN()
		cur, err := gA.Inspect(owner, info.bind)
		if errors.Is(err, pse.ErrCounterNotFound) {
			// Consumed by someone else: a local recovery or a migration
			// freeze won the instance first.
			return nil, fmt.Errorf("%w: origin binding already destroyed", cloudErrEscrowConsumed)
		}
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrOriginUnreachable, err)
		}
		if cur != verM {
			return nil, fmt.Errorf("%w: origin at %d, mirror at %d", ErrMirrorStale, cur, verM)
		}
		chargeWAN()
		final, err := gA.AdminDestroy(owner, info.bind)
		if errors.Is(err, pse.ErrCounterNotFound) {
			return nil, fmt.Errorf("%w: origin binding already destroyed", cloudErrEscrowConsumed)
		}
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrOriginUnreachable, err)
		}
		mirror.markConsumed(k)
		if final != verM {
			// An increment raced between read and destroy: the original
			// was alive and persisting. The origin binding is consumed
			// (nothing there can run on), but the mirror's record is
			// behind that last persist — refuse to resurrect stale state.
			return nil, fmt.Errorf("%w: captured %d, mirror at %d", ErrOriginAlive, final, verM)
		}
	}

	return target.RecoverAppCtx(tc, la.Image, la.EscrowID)
}

// cloudErrEscrowConsumed aliases core's sentinel without importing core
// into every message (kept local for error-wrapping clarity).
var cloudErrEscrowConsumed = errors.New("federation: escrow binding already consumed; state was recovered or migrated")

// Reconcile retires queued origin-binding revocations from forced
// (site-loss) recoveries: each origin binding is destroyed as soon as
// its site's rack quorum is reachable again, so revived originals fail
// closed with ErrRecoveredAway on their next persist or restore.
// Revocations that still cannot reach their quorum stay queued; call
// Reconcile again later (an operator cron, in production).
func (f *Federation) Reconcile() error {
	f.mu.Lock()
	pending := f.revokes
	f.revokes = nil
	dcs := make(map[string]*cloud.DataCenter, len(f.dcs))
	for n, dc := range f.dcs {
		dcs[n] = dc
	}
	f.mu.Unlock()

	var keep []revocation
	var errs []error
	for _, r := range pending {
		dc, ok := dcs[r.dc]
		if !ok {
			continue
		}
		g, ok := dc.ReplicaGroup(r.group)
		if !ok {
			continue
		}
		if _, err := g.AdminDestroy(r.owner, r.uuid); err != nil && !errors.Is(err, pse.ErrCounterNotFound) {
			keep = append(keep, r)
			errs = append(errs, fmt.Errorf("revoke origin binding in %s/%s: %w", r.dc, r.group, err))
		}
	}
	f.mu.Lock()
	f.revokes = append(f.revokes, keep...)
	f.mu.Unlock()
	return errors.Join(errs...)
}

// PendingRevocations reports how many origin-binding revocations await
// a reachable origin site.
func (f *Federation) PendingRevocations() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.revokes)
}

// Close stops every mirror worker.
func (f *Federation) Close() {
	f.mu.Lock()
	mirrors := make([]*Mirror, 0, len(f.mirrors))
	for _, m := range f.mirrors {
		mirrors = append(mirrors, m)
	}
	f.mu.Unlock()
	for _, m := range mirrors {
		m.Close()
	}
}
