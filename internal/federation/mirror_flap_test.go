package federation

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/transport"
)

// TestWANFlapMidFlush partitions the WAN link between two mirror
// flushes: the flush during the outage must fail (and report it), the
// flush after healing must converge the partner, and an unforced
// cross-DC recovery must then restore counter values current as of the
// last successful flush — the mirror's documented value-RPO bound.
func TestWANFlapMidFlush(t *testing.T) {
	fed, dcA, _, mirror := twoSites(t, transport.WANConfig{})
	link, ok := fed.Link("dc-a", "dc-b")
	if !ok {
		t.Fatal("no WAN link")
	}
	a1, _ := dcA.Machine("a1")
	app, ctr, _ := launchLedger(t, a1, "flapper") // 7 increments

	if err := mirror.Flush(); err != nil {
		t.Fatalf("baseline flush: %v", err)
	}

	// The link drops mid-stream: increments continue at the origin, but
	// the flush cannot move them — it must fail loudly, not silently
	// strand the partner stale.
	link.SetDown(true)
	for i := 0; i < 3; i++ {
		if _, err := app.Library.IncrementCounter(ctr); err != nil {
			t.Fatalf("increment during partition: %v", err)
		}
	}
	if err := mirror.Flush(); err == nil {
		t.Fatal("flush over a severed link reported success")
	} else if !errors.Is(err, transport.ErrLinkDown) {
		t.Fatalf("flush error = %v, want ErrLinkDown", err)
	}

	// Heal and converge: the re-sync reads live origin values, so the
	// partner catches up to 10 — including the increments that happened
	// while the link was down.
	link.SetDown(false)
	if err := mirror.Flush(); err != nil {
		t.Fatalf("flush after heal: %v", err)
	}

	a1.Kill()
	recovered, err := fed.RecoverMachine("dc-a", "a1", "dc-b", "b1", false)
	if err != nil {
		t.Fatalf("cross-DC recovery after flap: %v", err)
	}
	if len(recovered) != 1 {
		t.Fatalf("recovered %d apps, want 1", len(recovered))
	}
	lib := recovered[0].Library
	if v, err := lib.ReadCounter(ctr); err != nil || v != 10 {
		t.Fatalf("recovered counter = %d, %v; want 10 (RPO bound: current as of last flush)", v, err)
	}
	if v, err := lib.IncrementCounter(ctr); err != nil || v != 11 {
		t.Fatalf("increment after recovery = %d, %v; want 11", v, err)
	}
	// The zombie window stays closed: the original, were its machine to
	// return, was fenced by the arbitration — its escrow record's
	// binding is consumed.
	if err := a1.Restart(); err != nil {
		t.Fatalf("restart origin machine: %v", err)
	}
	if _, err := a1.RecoverApp(app.Image(), mustEscrowID(t, app.Library)); err == nil {
		t.Fatal("origin re-recovery succeeded after cross-DC resurrection")
	} else if !errors.Is(err, core.ErrEscrowConsumed) {
		t.Fatalf("origin re-recovery error = %v, want ErrEscrowConsumed", err)
	}
}
