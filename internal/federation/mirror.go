package federation

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/pse"
	"repro/internal/pserepl"
	"repro/internal/seal"
	"repro/internal/sgx"
	"repro/internal/transport"
	"repro/internal/xcrypto"
)

// Mirroring errors.
var (
	// ErrNotMirrored reports a cross-DC recovery of an instance the
	// partner holds no mirrored record for (the mirror never synced it).
	ErrNotMirrored = errors.New("federation: instance not mirrored at the partner site")
	// ErrMirrorStale reports a cross-DC recovery refused because the
	// partner's mirrored record is behind the origin's live binding
	// counter: recovering from it would roll the state back. Run
	// Mirror.Flush (or Sync) and retry.
	ErrMirrorStale = errors.New("federation: mirrored record is behind the origin binding counter")
	// ErrMirrorRefused reports a mirror exchange the partner endpoint
	// refused.
	ErrMirrorRefused = errors.New("federation: mirror exchange refused by partner")
)

// instanceKey identifies one mirrored enclave instance.
type instanceKey struct {
	owner sgx.Measurement
	id    [16]byte
}

// originInfo is the mirror's registry entry for one instance: the
// origin rack's binding counter behind the last pushed version. The
// federation's cross-DC recovery arbitrates against (or, after a site
// loss, queues a revocation of) exactly this binding.
type originInfo struct {
	bind     pse.UUID
	version  uint32
	consumed bool // origin binding destroyed by a cross-DC recovery we arbitrated
}

// Mirror asynchronously replicates one origin rack's escrow records
// into a partner rack in a peer data center: every committed escrow put
// at the origin enqueues the instance, and a worker re-reads the record,
// has the partner provision shadow counters (ensure), re-wraps the
// record for the partner's escrow key re-bound to the shadow binding
// counter, and pushes record + forward-only counter advances over the
// WAN. Shadow values therefore trail the origin by the mirror lag;
// Flush drains the queue when an operator needs the partner current
// (e.g. before a planned failover, or in tests).
//
// The mirror is the federation's one new trusted component (see the
// package comment): it holds both racks' escrow keys, as an agent
// enclave provisioned at partnering time would.
type Mirror struct {
	name    string
	origin  *pserepl.Group
	partner *seal.StateSealer // partner rack's escrow key
	msgr    transport.Messenger
	dest    transport.Address // partner mirror endpoint (exported over the WAN)
	sealer  *xcrypto.Sealer   // partnership link key

	mu      sync.Mutex
	cond    *sync.Cond
	pending map[instanceKey]struct{}
	// seq stamps each instance at its first-ever enqueue; flushes sync
	// in (owner, seq) order. The seq — not the instance id — is the
	// within-owner tiebreak because escrow instance ids are minted
	// randomly: sorting by id would sync one owner's old and migrated
	// instances in a different order each run, while the first commit of
	// the pre-migration instance always precedes the migrated one.
	seq     map[instanceKey]uint64
	nextSeq uint64
	inWork  int
	errs    []error
	known   map[instanceKey]*originInfo
	closed  bool
	manual  bool

	obs atomic.Pointer[obs.Observer]
	ep  *mirrorEndpoint // partner-side half (same process; for observer fan-out)
}

// SetObserver installs a telemetry observer on both halves of the
// mirror: the origin-side pusher opens a "mirror.push" span per sync
// whose trace context rides the exchange in-band, and the partner-side
// endpoint continues that trace in its handler spans.
func (m *Mirror) SetObserver(o *obs.Observer) {
	m.obs.Store(o)
	if m.ep != nil {
		m.ep.obs.Store(o)
	}
}

// newMirror wires a mirror to its origin group and partner endpoint and
// starts the sync worker.
func newMirror(name string, origin *pserepl.Group, partner *seal.StateSealer, msgr transport.Messenger, dest transport.Address, sealer *xcrypto.Sealer) *Mirror {
	m := &Mirror{
		name:    name,
		origin:  origin,
		partner: partner,
		msgr:    msgr,
		dest:    dest,
		sealer:  sealer,
		pending: make(map[instanceKey]struct{}),
		seq:     make(map[instanceKey]uint64),
		known:   make(map[instanceKey]*originInfo),
	}
	m.cond = sync.NewCond(&m.mu)
	origin.SetEscrowObserver(func(owner sgx.Measurement, id [16]byte, _ uint32) {
		m.enqueue(instanceKey{owner: owner, id: id})
	})
	go m.worker()
	return m
}

// Name returns the mirror's partnership name.
func (m *Mirror) Name() string { return m.name }

// enqueue marks an instance dirty; the worker syncs it soon.
func (m *Mirror) enqueue(k instanceKey) {
	m.mu.Lock()
	if !m.closed {
		m.pending[k] = struct{}{}
		if _, ok := m.seq[k]; !ok {
			m.nextSeq++
			m.seq[k] = m.nextSeq
		}
		met := m.obs.Load().M()
		met.Add("mirror.enqueue.total", 1)
		met.SetGauge("mirror.dirty", int64(len(m.pending)))
		m.cond.Broadcast()
	}
	m.mu.Unlock()
}

// SetManual switches the mirror between its normal background worker
// (false, the default) and manual mode (true): while manual, committed
// escrow puts still mark instances dirty but nothing syncs until Flush
// or Sync runs — on the caller's goroutine, in a deterministic (owner,
// id) order. Chaos harnesses use manual mode so a schedule's WAN
// exchanges (and therefore the link's seeded loss draws) happen at
// reproducible points instead of racing a background goroutine.
func (m *Mirror) SetManual(manual bool) {
	m.mu.Lock()
	m.manual = manual
	m.cond.Broadcast()
	m.mu.Unlock()
}

// worker drains the dirty set, one instance at a time.
func (m *Mirror) worker() {
	m.mu.Lock()
	for {
		for (len(m.pending) == 0 || m.manual) && !m.closed {
			m.cond.Wait()
		}
		if m.closed {
			m.mu.Unlock()
			return
		}
		var k instanceKey
		for k = range m.pending {
			break
		}
		delete(m.pending, k)
		m.inWork++
		m.mu.Unlock()
		err := m.syncOne(k)
		m.mu.Lock()
		m.inWork--
		if err != nil {
			// Failed syncs are reported through Flush; the instance is NOT
			// auto-requeued (a down link would busy-loop) — the next origin
			// persist or an explicit Sync/Flush retries it.
			m.errs = append(m.errs, fmt.Errorf("mirror %s: %x/%x: %w", m.name, k.owner[:4], k.id[:4], err))
		}
		m.cond.Broadcast()
	}
}

// Flush brings the partner current as of now: every known instance is
// re-enqueued (counter increments do not touch the escrow store, so
// shadow VALUES only move when a sync runs — a re-sync reads the live
// origin values), the queue is drained, and the errors accumulated
// since the last Flush are returned (nil when the partner is fully
// current). Operators run it before a planned failover; production
// deployments would drive the same re-sync from a timer to bound the
// value RPO.
func (m *Mirror) Flush() error {
	return m.noteFlush(m.flush())
}

// noteFlush records flush telemetry: the attempt counter always moves,
// and a clean flush stamps mirror.flush.last_unix_ns — the gauge the
// mirror-rpo-age SLO (internal/obs/analyze) measures freshness from.
func (m *Mirror) noteFlush(err error) error {
	met := m.obs.Load().M()
	met.Add("mirror.flush.total", 1)
	if err == nil {
		met.SetGauge("mirror.flush.last_unix_ns", time.Now().UnixNano())
	} else {
		met.Add("mirror.flush.errors", 1)
	}
	m.mu.Lock()
	met.SetGauge("mirror.dirty", int64(len(m.pending)))
	m.publishKnownLocked(met)
	m.mu.Unlock()
	return err
}

// publishKnownLocked refreshes the mirror.known gauge: how many live
// (non-consumed) instances the partner currently shadows. The mirror
// health detector reads it to tell an idle mirror from a lying one — a
// successful flush with known instances must push records. m.mu held.
func (m *Mirror) publishKnownLocked(met *obs.Metrics) {
	n := int64(0)
	for _, info := range m.known {
		if !info.consumed {
			n++
		}
	}
	met.SetGauge("mirror.known", n)
}

func (m *Mirror) flush() error {
	m.mu.Lock()
	if !m.closed {
		for k, info := range m.known {
			if info.consumed {
				continue // recovered away; nothing to keep current
			}
			m.pending[k] = struct{}{}
		}
		m.cond.Broadcast()
	}
	if m.manual && !m.closed {
		// Manual mode: drain on the caller's goroutine, sorted by
		// (owner, first-enqueue seq) so a seeded chaos run syncs — and
		// draws WAN loss — in a reproducible order. The seq tiebreak
		// matters once migrations put two instances of one owner in the
		// same flush: their randomly minted ids would order differently
		// each run, while first-commit order is stable.
		keys := make([]instanceKey, 0, len(m.pending))
		for k := range m.pending {
			keys = append(keys, k)
		}
		seqOf := make(map[instanceKey]uint64, len(keys))
		for _, k := range keys {
			seqOf[k] = m.seq[k]
		}
		clear(m.pending)
		errs := m.errs
		m.errs = nil
		m.mu.Unlock()
		sort.Slice(keys, func(i, j int) bool {
			if c := bytes.Compare(keys[i].owner[:], keys[j].owner[:]); c != 0 {
				return c < 0
			}
			return seqOf[keys[i]] < seqOf[keys[j]]
		})
		for _, k := range keys {
			if err := m.syncOne(k); err != nil {
				errs = append(errs, fmt.Errorf("mirror %s: %x/%x: %w", m.name, k.owner[:4], k.id[:4], err))
			}
		}
		return errors.Join(errs...)
	}
	for (len(m.pending) > 0 || m.inWork > 0) && !m.closed {
		m.cond.Wait()
	}
	errs := m.errs
	m.errs = nil
	m.mu.Unlock()
	return errors.Join(errs...)
}

// Sync mirrors one instance synchronously (the manual/retry path).
func (m *Mirror) Sync(owner sgx.Measurement, id [16]byte) error {
	return m.syncOne(instanceKey{owner: owner, id: id})
}

// Close stops the worker (pending syncs are dropped).
func (m *Mirror) Close() {
	m.mu.Lock()
	m.closed = true
	m.cond.Broadcast()
	m.mu.Unlock()
	m.origin.SetEscrowObserver(nil)
}

// originBinding reports the registry entry for an instance.
func (m *Mirror) originBinding(k instanceKey) (originInfo, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	info, ok := m.known[k]
	if !ok {
		return originInfo{}, false
	}
	return *info, true
}

// markConsumed records that a cross-DC recovery destroyed the origin
// binding through this mirror's arbitration.
func (m *Mirror) markConsumed(k instanceKey) {
	m.mu.Lock()
	if info, ok := m.known[k]; ok {
		info.consumed = true
	} else {
		m.known[k] = &originInfo{consumed: true}
	}
	m.mu.Unlock()
}

// exchange runs one sealed request/response with the partner endpoint.
// The trace context travels outside the sealed payload (the transport
// envelope), so the endpoint authenticates exactly what it always did.
func (m *Mirror) exchange(tc obs.TraceContext, kind string, payload []byte) ([]byte, error) {
	sealed, err := m.sealer.Seal(payload, aadReq(kind, m.name))
	if err != nil {
		return nil, err
	}
	reply, err := m.msgr.Send(transport.Address("fed-mirror-src/"+m.name), m.dest, kind, obs.Inject(tc, sealed))
	if err != nil {
		return nil, err
	}
	return m.sealer.Open(reply, aadRep(kind, m.name))
}

// syncOne brings the partner current for one instance: tombstones
// propagate as tombstones, live records as ensure + transform + push.
func (m *Mirror) syncOne(k instanceKey) (err error) {
	if faultSkipMirrorResync && m.alreadyMirrored(k) {
		// Mutation self-test only (build tag chaosmut): silently claim
		// success without re-pushing an instance the partner already
		// shadows, so flushes "succeed" while shadow values go stale. The
		// chaos checker must convict the resulting post-failover rollback,
		// and the mirror health detector must flag the flush-without-push
		// signature — nothing is recorded here on purpose, a liar leaves
		// no tracks.
		return nil
	}
	o := m.obs.Load()
	sp, tc := o.StartSpan("mirror.push", obs.TraceContext{})
	if sp != nil {
		sp.Site = m.name
		defer sp.End()
	}
	start := time.Now()
	defer func() {
		o.M().Add("mirror.push.total", 1)
		o.M().Histogram("mirror.push.latency").Observe(time.Since(start))
		if err != nil {
			o.M().Add("mirror.push.errors", 1)
		}
	}()
	ver, bind, blob, err := m.origin.EscrowGet(k.owner, k.id)
	if errors.Is(err, pserepl.ErrEscrowDecommissioned) {
		return m.pushTombstone(tc, k)
	}
	if err != nil {
		return fmt.Errorf("origin escrow get: %w", err)
	}
	view, err := core.InspectEscrowRecord(m.origin.EscrowSealer(), k.owner, k.id, ver, bind, blob)
	if err != nil {
		return err
	}

	// Ensure the partner's shadows exist (idempotent; the endpoint keeps
	// the mapping stable across syncs).
	var slots []uint8
	for _, s := range view.Slots {
		slots = append(slots, uint8(s))
	}
	nonce, err := newNonce()
	if err != nil {
		return err
	}
	ens := &ensureMessage{Owner: k.owner, ID: k.id, Slots: slots, Nonce: nonce}
	raw, err := m.exchange(tc, kindEnsure, ens.encode())
	if err != nil {
		return fmt.Errorf("ensure shadows: %w", err)
	}
	rep, err := decodeEnsureReply(raw)
	if err != nil {
		return err
	}
	if rep.Nonce != nonce {
		return fmt.Errorf("%w: stale ensure reply", ErrMirrorRefused)
	}
	if rep.Status != statusOK {
		return fmt.Errorf("%w: ensure status %d", ErrMirrorRefused, rep.Status)
	}
	shadow := make(map[int]pse.UUID, len(rep.Pairs))
	for _, p := range rep.Pairs {
		shadow[int(p.Slot)] = p.UUID
	}

	// Read the origin values the shadows must reach. Reading after the
	// record fetch can only observe NEWER values than the record's
	// version covers — forward-only advances make that harmless (the
	// shadow can never be behind the mirrored record, which is the
	// invariant recovery needs).
	adv := make([]counterAdvance, 0, len(view.Slots)+1)
	if !view.Frozen {
		for i, s := range view.Slots {
			v, err := m.origin.Inspect(k.owner, view.UUIDs[i])
			if err != nil {
				return fmt.Errorf("inspect origin counter slot %d: %w", s, err)
			}
			su, ok := shadow[s]
			if !ok {
				return fmt.Errorf("%w: partner returned no shadow for slot %d", ErrMirrorRefused, s)
			}
			adv = append(adv, counterAdvance{UUID: su, Value: v})
		}
	}
	// The shadow binding advances to exactly the record's version.
	adv = append(adv, counterAdvance{UUID: rep.Bind, Value: ver})

	rec, err := core.TransformEscrowForMirror(
		m.origin.EscrowSealer(), m.partner, k.owner, k.id, ver, bind, blob, rep.Bind, shadow)
	if err != nil {
		return err
	}
	if nonce, err = newNonce(); err != nil {
		return err
	}
	push := &pushMessage{Owner: k.owner, ID: k.id, Version: ver, Bind: rep.Bind, Record: rec, Adv: adv, Nonce: nonce}
	raw, err = m.exchange(tc, kindPush, push.encode())
	if err != nil {
		return fmt.Errorf("push record: %w", err)
	}
	prep, err := decodePushReply(raw)
	if err != nil {
		return err
	}
	if prep.Nonce != nonce {
		return fmt.Errorf("%w: stale push reply", ErrMirrorRefused)
	}
	if prep.Status == statusObsolete {
		// The partner already resurrected this instance; it no longer
		// mirrors from here. Stop re-syncing it.
		m.markConsumed(k)
		return nil
	}
	if prep.Status != statusOK {
		return fmt.Errorf("%w: push status %d", ErrMirrorRefused, prep.Status)
	}

	m.mu.Lock()
	if info, ok := m.known[k]; ok {
		if ver >= info.version {
			info.bind, info.version = bind, ver
		}
	} else {
		m.known[k] = &originInfo{bind: bind, version: ver}
	}
	met := o.M()
	met.SetGauge("mirror.push.last_unix_ns", time.Now().UnixNano())
	m.publishKnownLocked(met)
	m.mu.Unlock()
	return nil
}

// alreadyMirrored reports whether the partner already shadows a live
// copy of k (the chaosmut skip-resync gate's predicate).
func (m *Mirror) alreadyMirrored(k instanceKey) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	info, ok := m.known[k]
	return ok && !info.consumed
}

// pushTombstone propagates a decommission to the partner.
func (m *Mirror) pushTombstone(tc obs.TraceContext, k instanceKey) error {
	nonce, err := newNonce()
	if err != nil {
		return err
	}
	push := &pushMessage{Owner: k.owner, ID: k.id, Version: pserepl.EscrowTombstoneVersion, Nonce: nonce}
	raw, err := m.exchange(tc, kindPush, push.encode())
	if err != nil {
		return fmt.Errorf("push tombstone: %w", err)
	}
	rep, err := decodePushReply(raw)
	if err != nil {
		return err
	}
	if rep.Nonce != nonce || rep.Status != statusOK {
		return fmt.Errorf("%w: tombstone push refused", ErrMirrorRefused)
	}
	m.mu.Lock()
	delete(m.known, k)
	m.mu.Unlock()
	return nil
}

// newNonce draws a per-request freshness value.
func newNonce() (uint64, error) {
	b, err := xcrypto.RandomBytes(8)
	if err != nil {
		return 0, fmt.Errorf("request nonce: %w", err)
	}
	var n uint64
	for _, c := range b {
		n = n<<8 | uint64(c)
	}
	return n, nil
}

// shadowSet is the endpoint's provisioning record for one instance.
type shadowSet struct {
	bind  pse.UUID
	slots map[int]pse.UUID
}

// mirrorEndpoint is the partner-side half: it provisions shadow
// counters in the partner group, applies forward-only advances, and
// stores re-wrapped records — all behind the sealed link channel.
type mirrorEndpoint struct {
	name  string
	group *pserepl.Group
	seal  *xcrypto.Sealer
	obs   atomic.Pointer[obs.Observer]

	mu      sync.Mutex
	shadows map[instanceKey]*shadowSet
}

// newMirrorEndpoint registers the endpoint on the partner DC's
// messenger at addr.
func newMirrorEndpoint(name string, group *pserepl.Group, sealer *xcrypto.Sealer, msgr transport.Messenger, addr transport.Address) (*mirrorEndpoint, error) {
	ep := &mirrorEndpoint{
		name:    name,
		group:   group,
		seal:    sealer,
		shadows: make(map[instanceKey]*shadowSet),
	}
	if err := msgr.Register(addr, ep.handle); err != nil {
		return nil, fmt.Errorf("register mirror endpoint: %w", err)
	}
	return ep, nil
}

// handle authenticates and dispatches one mirror exchange.
func (ep *mirrorEndpoint) handle(msg transport.Message) ([]byte, error) {
	sp, _ := ep.obs.Load().StartSpan("mirror.handle-"+msg.Kind, msg.Trace)
	if sp != nil {
		sp.Site = ep.name
		defer sp.End()
	}
	payload, err := ep.seal.Open(msg.Payload, aadReq(msg.Kind, ep.name))
	if err != nil {
		return nil, fmt.Errorf("federation: mirror message failed authentication: %w", err)
	}
	var reply []byte
	switch msg.Kind {
	case kindEnsure:
		reply, err = ep.handleEnsure(payload)
	case kindPush:
		reply, err = ep.handlePush(payload)
	default:
		return nil, fmt.Errorf("%w: unknown kind %q", ErrWireFormat, msg.Kind)
	}
	if err != nil {
		return nil, err
	}
	sealed, err := ep.seal.Seal(reply, aadRep(msg.Kind, ep.name))
	if err != nil {
		return nil, fmt.Errorf("seal mirror reply: %w", err)
	}
	return sealed, nil
}

// handleEnsure provisions (or reports) the shadow set for an instance.
func (ep *mirrorEndpoint) handleEnsure(payload []byte) ([]byte, error) {
	m, err := decodeEnsureMessage(payload)
	if err != nil {
		return nil, err
	}
	k := instanceKey{owner: m.Owner, id: m.ID}
	ep.mu.Lock()
	defer ep.mu.Unlock()
	set, ok := ep.shadows[k]
	if !ok {
		bind, err := ep.group.AdminCreate(m.Owner)
		if err != nil {
			return nil, fmt.Errorf("create shadow binding: %w", err)
		}
		set = &shadowSet{bind: bind, slots: make(map[int]pse.UUID)}
		ep.shadows[k] = set
	}
	rep := &ensureReply{Status: statusOK, Bind: set.bind, Nonce: m.Nonce}
	for _, s := range m.Slots {
		uuid, ok := set.slots[int(s)]
		if !ok {
			var err error
			if uuid, err = ep.group.AdminCreate(m.Owner); err != nil {
				return nil, fmt.Errorf("create shadow counter slot %d: %w", s, err)
			}
			set.slots[int(s)] = uuid
		}
		rep.Pairs = append(rep.Pairs, shadowPair{Slot: s, UUID: uuid})
	}
	return rep.encode(), nil
}

// handlePush applies advances and stores (or tombstones) the record.
// Everything applied is forward-only, so replayed or repeated pushes
// cannot regress anything.
func (ep *mirrorEndpoint) handlePush(payload []byte) ([]byte, error) {
	m, err := decodePushMessage(payload)
	if err != nil {
		return nil, err
	}
	k := instanceKey{owner: m.Owner, id: m.ID}
	if m.Record == nil && m.Version == pserepl.EscrowTombstoneVersion {
		// Decommission propagated from the origin: destroy the shadows
		// and make the partner copy permanently unrecoverable too.
		ep.mu.Lock()
		set := ep.shadows[k]
		delete(ep.shadows, k)
		ep.mu.Unlock()
		if set != nil {
			_, _ = ep.group.AdminDestroy(m.Owner, set.bind)
			for _, uuid := range set.slots {
				_, _ = ep.group.AdminDestroy(m.Owner, uuid)
			}
		}
		if err := ep.group.EscrowTombstone(m.Owner, m.ID); err != nil {
			return nil, err
		}
		return (&pushReply{Status: statusOK, Nonce: m.Nonce}).encode(), nil
	}
	// Advances first, record second: if the put fails midway the shadow
	// binding may be ahead of the stored record, which recovery rejects
	// as stale (fails safe) until the next push lands.
	for _, a := range m.Adv {
		if _, err := ep.group.AdminAdvance(m.Owner, a.UUID, a.Value); err != nil {
			if errors.Is(err, pse.ErrCounterNotFound) {
				// The shadow binding (or a shadow counter) was consumed: a
				// cross-DC recovery already resurrected this instance HERE,
				// and its live library owns fresh counters now. Tell the
				// mirror to stop syncing it.
				return (&pushReply{Status: statusObsolete, Nonce: m.Nonce}).encode(), nil
			}
			return nil, fmt.Errorf("advance shadow: %w", err)
		}
	}
	if err := ep.group.EscrowPut(m.Owner, m.ID, m.Version, m.Bind, m.Record); err != nil &&
		!errors.Is(err, pserepl.ErrEscrowSuperseded) {
		// A superseded put means a newer record (e.g. the partner-side
		// recovery's re-escrow) already landed — current enough, not an
		// error; anything else (no quorum) is.
		return nil, err
	}
	return (&pushReply{Status: statusOK, Nonce: m.Nonce}).encode(), nil
}
