package federation

import (
	"crypto/ed25519"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/attest"
	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/sgx"
	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/xcrypto"
)

// appImage builds a deterministic test enclave image.
func appImage(name string) *sgx.Image {
	key := xcrypto.DeriveKey([]byte("federation-test"), "signer")
	return &sgx.Image{
		Name:            name,
		Version:         1,
		Code:            []byte("fed-test:" + name),
		SignerPublicKey: ed25519.PublicKey(key[:]),
	}
}

// twoSites builds the canonical federated world: DC "dc-a" and "dc-b",
// three machines each (a1..a3 / b1..b3), one f=1 replica group per
// site, connected with the given WAN config and escrow-partnered
// rack-a -> rack-b.
func twoSites(t *testing.T, cfg transport.WANConfig) (*Federation, *cloud.DataCenter, *cloud.DataCenter, *Mirror) {
	t.Helper()
	f := New("fed")
	dcs := make([]*cloud.DataCenter, 0, 2)
	for _, name := range []string{"dc-a", "dc-b"} {
		dc, err := cloud.NewDataCenter(name, sim.NewInstantLatency())
		if err != nil {
			t.Fatal(err)
		}
		prefix := name[len(name)-1:]
		ids := make([]string, 0, 3)
		for i := 1; i <= 3; i++ {
			id := fmt.Sprintf("%s%d", prefix, i)
			if _, err := dc.AddMachine(id); err != nil {
				t.Fatal(err)
			}
			ids = append(ids, id)
		}
		if _, err := dc.NewReplicaGroup("rack-"+prefix, 1, ids...); err != nil {
			t.Fatal(err)
		}
		if err := f.Admit(dc); err != nil {
			t.Fatal(err)
		}
		dcs = append(dcs, dc)
	}
	if _, err := f.Connect("dc-a", "dc-b", cfg); err != nil {
		t.Fatal(err)
	}
	mirror, err := f.PartnerGroups("dc-a", "rack-a", "dc-b", "rack-b")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	return f, dcs[0], dcs[1], mirror
}

// launchLedger starts the canonical test app on a machine: one counter
// incremented to 7 and a sealed application blob.
func launchLedger(t *testing.T, m *cloud.Machine, name string) (*cloud.App, int, []byte) {
	t.Helper()
	app, err := m.LaunchApp(appImage(name), core.NewMemoryStorage(), core.InitNew)
	if err != nil {
		t.Fatal(err)
	}
	ctr, _, err := app.Library.CreateCounter()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		if _, err := app.Library.IncrementCounter(ctr); err != nil {
			t.Fatal(err)
		}
	}
	sealed, err := app.Library.SealMigratable([]byte("ledger"), []byte("balance=1337"))
	if err != nil {
		t.Fatal(err)
	}
	return app, ctr, sealed
}

// TestCrossDCRecovery is the both-sites-alive path: a machine dies in
// dc-a, its enclave is resurrected in dc-b from the mirrored escrow,
// counters and app state intact, and the zombie original fails closed.
func TestCrossDCRecovery(t *testing.T) {
	fed, dcA, _, mirror := twoSites(t, transport.WANConfig{})
	a1, _ := dcA.Machine("a1")
	app, ctr, sealed := launchLedger(t, a1, "ledger")
	storage := app.Storage
	if err := mirror.Flush(); err != nil {
		t.Fatalf("mirror flush: %v", err)
	}

	a1.Kill()
	recovered, err := fed.RecoverMachine("dc-a", "a1", "dc-b", "b1", false)
	if err != nil {
		t.Fatalf("cross-DC recovery: %v", err)
	}
	if len(recovered) != 1 {
		t.Fatalf("recovered %d apps, want 1", len(recovered))
	}
	lib := recovered[0].Library
	if v, err := lib.ReadCounter(ctr); err != nil || v != 7 {
		t.Fatalf("recovered counter = %d, %v; want 7", v, err)
	}
	if pt, _, err := lib.UnsealMigratable(sealed); err != nil || string(pt) != "balance=1337" {
		t.Fatalf("recovered app state = %q, %v", pt, err)
	}
	if v, err := lib.IncrementCounter(ctr); err != nil || v != 8 {
		t.Fatalf("increment after recovery = %d, %v; want 8", v, err)
	}

	// The zombie original fails closed: its origin binding was consumed
	// by the arbitration step.
	if err := a1.Restart(); err != nil {
		t.Fatal(err)
	}
	if _, err := a1.LaunchApp(appImage("ledger"), storage, core.InitRestore); !errors.Is(err, core.ErrRecoveredAway) {
		t.Fatalf("zombie restore not refused with ErrRecoveredAway: %v", err)
	}

	// A second resurrection of the same instance is refused: the
	// management plane sees it alive in dc-b, and even past that guard
	// the shadow binding was consumed by the first win.
	b2, _ := dcBOf(t, fed).Machine("b2")
	if _, err := b2.RecoverApp(appImage("ledger"), mustEscrowID(t, lib)); !errors.Is(err, cloud.ErrInstanceAlive) {
		t.Fatalf("double resurrection: got %v, want ErrInstanceAlive", err)
	}
}

// dcBOf fetches dc-b from the federation.
func dcBOf(t *testing.T, fed *Federation) *cloud.DataCenter {
	t.Helper()
	dc, ok := fed.DataCenter("dc-b")
	if !ok {
		t.Fatal("dc-b not admitted")
	}
	return dc
}

// mustEscrowID reads a library's escrow instance ID.
func mustEscrowID(t *testing.T, lib *core.Library) [16]byte {
	t.Helper()
	id, ok := lib.EscrowID()
	if !ok {
		t.Fatal("library has no escrow ID")
	}
	return id
}

// TestSiteLossRecovery is the acceptance-criteria e2e: the whole origin
// rack dies (quorum lost), a FORCED recovery resurrects the enclave in
// the peer DC with counters and app state intact, and when the origin
// site comes back, Reconcile retires the queued revocation so the
// zombie original fails closed with ErrRecoveredAway.
func TestSiteLossRecovery(t *testing.T) {
	fed, dcA, dcB, mirror := twoSites(t, transport.WANConfig{})
	a1, _ := dcA.Machine("a1")
	app, ctr, sealed := launchLedger(t, a1, "ledger")
	storage := app.Storage
	if err := mirror.Flush(); err != nil {
		t.Fatalf("mirror flush: %v", err)
	}

	// Site loss: every machine of the origin rack dies at once.
	for _, id := range []string{"a1", "a2", "a3"} {
		m, _ := dcA.Machine(id)
		m.Kill()
	}

	// Unforced recovery refuses: the origin binding cannot be arbitrated.
	if _, err := fed.RecoverMachine("dc-a", "a1", "dc-b", "b1", false); !errors.Is(err, ErrOriginUnreachable) {
		t.Fatalf("unforced site-loss recovery: got %v, want ErrOriginUnreachable", err)
	}

	// Forced recovery: the operator declares the site lost.
	recovered, err := fed.RecoverMachine("dc-a", "a1", "dc-b", "b1", true)
	if err != nil {
		t.Fatalf("forced recovery: %v", err)
	}
	if len(recovered) != 1 {
		t.Fatalf("recovered %d apps, want 1", len(recovered))
	}
	lib := recovered[0].Library
	if v, err := lib.ReadCounter(ctr); err != nil || v != 7 {
		t.Fatalf("recovered counter = %d, %v; want 7", v, err)
	}
	if pt, _, err := lib.UnsealMigratable(sealed); err != nil || string(pt) != "balance=1337" {
		t.Fatalf("recovered app state = %q, %v", pt, err)
	}
	if _, err := lib.IncrementCounter(ctr); err != nil {
		t.Fatalf("increment after forced recovery: %v", err)
	}
	if n := fed.PendingRevocations(); n != 1 {
		t.Fatalf("pending revocations = %d, want 1", n)
	}

	// The origin site heals: machines restart (reseeds fail until
	// enough agents are back — a full-rack cold restart), then the rack
	// re-seeds itself from the union of its durable replica states.
	gA, _ := dcA.ReplicaGroup("rack-a")
	for _, id := range []string{"a1", "a2", "a3"} {
		m, _ := dcA.Machine(id)
		_ = m.Restart() // reseed may fail while peers are still down
	}
	for _, id := range []string{"a1", "a2", "a3"} {
		if err := gA.Reseed(id); err != nil {
			t.Fatalf("cold-restart reseed %s: %v", id, err)
		}
	}

	// Reconcile destroys the origin binding; the zombie then fails
	// closed exactly like a local recovery's zombie.
	if err := fed.Reconcile(); err != nil {
		t.Fatalf("reconcile: %v", err)
	}
	if n := fed.PendingRevocations(); n != 0 {
		t.Fatalf("pending revocations after reconcile = %d, want 0", n)
	}
	if _, err := a1.LaunchApp(appImage("ledger"), storage, core.InitRestore); !errors.Is(err, core.ErrRecoveredAway) {
		t.Fatalf("zombie restore not refused with ErrRecoveredAway: %v", err)
	}

	// The recovered instance in dc-b keeps running: one winner, ever.
	if v, err := lib.ReadCounter(ctr); err != nil || v != 8 {
		t.Fatalf("survivor counter = %d, %v; want 8", v, err)
	}
	_ = dcB
}

// TestDecommissionPropagatesToPartner: an operator decommission at the
// origin rack reaches the partner site through the mirror — the shadow
// counters are reclaimed and the mirrored record tombstoned, so the
// instance cannot be resurrected in either data center.
func TestDecommissionPropagatesToPartner(t *testing.T) {
	fed, dcA, dcB, mirror := twoSites(t, transport.WANConfig{})
	a1, _ := dcA.Machine("a1")
	app, _, _ := launchLedger(t, a1, "doomed")
	escrowID, ok := app.Library.EscrowID()
	if !ok {
		t.Fatal("no escrow ID")
	}
	if err := mirror.Flush(); err != nil {
		t.Fatal(err)
	}
	gB, _ := dcB.ReplicaGroup("rack-b")
	if n := gB.TotalLive(); n != 2 {
		t.Fatalf("partner shadows before decommission = %d, want 2", n)
	}

	app.Terminate()
	if err := dcA.DecommissionApp("rack-a", appImage("doomed"), escrowID); err != nil {
		t.Fatalf("decommission: %v", err)
	}
	if err := mirror.Flush(); err != nil {
		t.Fatalf("mirror flush after decommission: %v", err)
	}
	if n := gB.TotalLive(); n != 0 {
		t.Fatalf("partner shadows after decommission = %d, want 0", n)
	}
	b1, _ := dcB.Machine("b1")
	if _, err := b1.RecoverApp(appImage("doomed"), escrowID); err == nil {
		t.Fatal("decommissioned instance resurrected at the partner")
	}
	_ = fed
}

// TestFederatedAttestationMatrix is the rejection matrix: cross-DC ME
// handshakes succeed exactly when a valid, unrevoked, correctly-scoped
// grant is installed.
func TestFederatedAttestationMatrix(t *testing.T) {
	newDC := func(name string) *cloud.DataCenter {
		dc, err := cloud.NewDataCenter(name, sim.NewInstantLatency())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := dc.AddMachine(name + "-m1"); err != nil {
			t.Fatal(err)
		}
		return dc
	}
	transcript := []byte("handshake transcript")

	t.Run("unfederated peer", func(t *testing.T) {
		a, b := newDC("ua"), newDC("ub")
		ma, _ := a.Machine("ua-m1")
		credB, err := b.Provider.ProvisionME("ub-m1")
		if err != nil {
			t.Fatal(err)
		}
		credA, err := a.Provider.ProvisionME("probe")
		if err != nil {
			t.Fatal(err)
		}
		sig := credB.Sign(transcript)
		if err := credA.VerifyPeer(credB.Certificate(), transcript, sig); !errors.Is(err, attest.ErrNotFederated) {
			t.Fatalf("unfederated peer: got %v, want ErrNotFederated", err)
		}
		_ = ma
	})

	t.Run("valid grant accepts, revocation cuts off", func(t *testing.T) {
		a, b := newDC("va"), newDC("vb")
		grant, err := a.Provider.GrantFederation(b.Provider.Name(), b.Provider.Authority().PublicKey(), time.Hour)
		if err != nil {
			t.Fatal(err)
		}
		framed, err := EncodeGrant(grant)
		if err != nil {
			t.Fatal(err)
		}
		decoded, err := DecodeGrant(framed)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Provider.AcceptGrant(decoded, b.Provider.Authority().IsRevoked); err != nil {
			t.Fatal(err)
		}
		credA, _ := a.Provider.ProvisionME("probe")
		credB, _ := b.Provider.ProvisionME("vb-m1")
		sig := credB.Sign(transcript)
		if err := credA.VerifyPeer(credB.Certificate(), transcript, sig); err != nil {
			t.Fatalf("federated peer rejected: %v", err)
		}
		// Revocation is immediate and per peer.
		a.Provider.RevokeFederation(b.Provider.Name())
		if err := credA.VerifyPeer(credB.Certificate(), transcript, sig); !errors.Is(err, attest.ErrNotFederated) {
			t.Fatalf("revoked federation still accepted: %v", err)
		}
	})

	t.Run("peer machine revocation honored", func(t *testing.T) {
		// The peer operator revoking ONE of its machines must cut that
		// machine off across the federation too — the grant carries the
		// peer authority's online revocation feed.
		a, b := newDC("ra"), newDC("rb")
		grant, err := a.Provider.GrantFederation(b.Provider.Name(), b.Provider.Authority().PublicKey(), time.Hour)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Provider.AcceptGrant(grant, b.Provider.Authority().IsRevoked); err != nil {
			t.Fatal(err)
		}
		credA, _ := a.Provider.ProvisionME("probe")
		credB, _ := b.Provider.ProvisionME("rb-m1")
		sig := credB.Sign(transcript)
		if err := credA.VerifyPeer(credB.Certificate(), transcript, sig); err != nil {
			t.Fatalf("federated peer rejected: %v", err)
		}
		b.Provider.Revoke("rb-m1")
		if err := credA.VerifyPeer(credB.Certificate(), transcript, sig); !errors.Is(err, attest.ErrProviderAuth) {
			t.Fatalf("peer-revoked ME still accepted across the federation: %v", err)
		}
	})

	t.Run("expired grant", func(t *testing.T) {
		a, b := newDC("ea"), newDC("eb")
		grant, err := a.Provider.GrantFederation(b.Provider.Name(), b.Provider.Authority().PublicKey(), -time.Hour)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Provider.AcceptGrant(grant, nil); !errors.Is(err, attest.ErrBadGrant) {
			t.Fatalf("expired grant installed: %v", err)
		}
	})

	t.Run("wrong-scope grant", func(t *testing.T) {
		a, b := newDC("wa"), newDC("wb")
		// A certificate with the right key but the ME role instead of the
		// federation scope must not work as a grant.
		wrong, err := a.Provider.Authority().Issue(
			b.Provider.Name(), "migration-enclave", b.Provider.Authority().PublicKey(), time.Hour)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Provider.AcceptGrant(wrong, nil); !errors.Is(err, attest.ErrBadGrant) {
			t.Fatalf("wrong-scope grant installed: %v", err)
		}
	})

	t.Run("forged grant", func(t *testing.T) {
		a, b := newDC("fa"), newDC("fb")
		mallory, err := attest.NewProvider("mallory")
		if err != nil {
			t.Fatal(err)
		}
		forged, err := mallory.GrantFederation(b.Provider.Name(), b.Provider.Authority().PublicKey(), time.Hour)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Provider.AcceptGrant(forged, nil); !errors.Is(err, attest.ErrBadGrant) {
			t.Fatalf("forged grant installed: %v", err)
		}
	})
}

// TestCrossDCMigration runs a real ME-to-ME migration across the WAN
// link: the full Fig. 2 protocol between two provider domains that
// trust each other only through the scoped grants.
func TestCrossDCMigration(t *testing.T) {
	fed, dcA, dcB, _ := twoSites(t, transport.WANConfig{RTT: time.Millisecond})
	a1, _ := dcA.Machine("a1")
	b1, _ := dcB.Machine("b1")
	app, ctr, _ := launchLedger(t, a1, "roamer")

	if err := app.Library.StartMigration(b1.MEAddress()); err != nil {
		t.Fatalf("cross-DC StartMigration: %v", err)
	}
	moved, err := b1.LaunchApp(appImage("roamer"), core.NewMemoryStorage(), core.InitMigrated)
	if err != nil {
		t.Fatalf("cross-DC restore: %v", err)
	}
	if v, err := moved.Library.ReadCounter(ctr); err != nil || v != 7 {
		t.Fatalf("migrated counter = %d, %v; want 7", v, err)
	}
	if done, err := app.Library.MigrationComplete(); err != nil || !done {
		t.Fatalf("migration not confirmed done: %v %v", done, err)
	}
	if !app.Library.Frozen() {
		t.Fatal("source library not frozen after cross-DC migration")
	}
	link, _ := fed.Link("dc-a", "dc-b")
	if msgs, bytes := link.Stats(); msgs == 0 || bytes == 0 {
		t.Fatalf("no traffic crossed the WAN link (msgs=%d bytes=%d)", msgs, bytes)
	}
	if hops := link.Latency().Counts()[sim.OpWANHop]; hops == 0 {
		t.Fatal("no OpWANHop charged for cross-DC migration")
	}
}

// TestDisconnectStopsMigration: after Disconnect, cross-DC transfers
// fail — the grants are revoked and the link is down.
func TestDisconnectStopsMigration(t *testing.T) {
	fed, dcA, dcB, _ := twoSites(t, transport.WANConfig{})
	a1, _ := dcA.Machine("a1")
	b1, _ := dcB.Machine("b1")
	app, _, _ := launchLedger(t, a1, "stuck")

	if err := fed.Disconnect("dc-a", "dc-b"); err != nil {
		t.Fatal(err)
	}
	err := app.Library.StartMigration(b1.MEAddress())
	if err == nil {
		t.Fatal("migration across disconnected federation succeeded")
	}
	if !errors.Is(err, core.ErrMigrationPending) {
		t.Fatalf("expected data parked at source ME (ErrMigrationPending), got %v", err)
	}
}
