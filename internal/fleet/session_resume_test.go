package fleet_test

import (
	"context"
	"testing"

	"repro/internal/cloud"
	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/sim"
)

// TestSessionResumeEpochFence is the resume trust-argument test: batches
// after the first resume a cached session instead of re-attesting, but a
// restarted destination ME — a brand-new enclave with a fresh epoch and
// no memory of accepted sessions — must refuse every pre-restart resume
// ticket, forcing the source back to a full quote-verified handshake.
func TestSessionResumeEpochFence(t *testing.T) {
	dc, err := cloud.NewDataCenter("dc", sim.NewInstantLatency())
	if err != nil {
		t.Fatal(err)
	}
	observer := obs.NewObserver()
	dc.SetObserver(observer)
	a, _ := dc.AddMachine("A")
	b, _ := dc.AddMachine("B")

	resumed := func() int64 {
		return observer.M().Counter("me.session.resumed").Value()
	}
	refused := func() int64 {
		return observer.M().Counter("me.session.resume.refused").Value()
	}
	hit := func() int64 {
		return observer.M().Counter("me.session.resume.hit").Value()
	}
	miss := func() int64 {
		return observer.M().Counter("me.session.resume.miss").Value()
	}

	// First drain: batch #1 performs the full handshake and caches the
	// session; with a single worker, batch #2 must resume it.
	launchApps(t, a, 8)
	orch := fleet.New(dc, fleet.Config{Workers: 1, BatchSize: 4, Obs: observer})
	report, err := orch.Execute(context.Background(), fleet.Drain("A"))
	if err != nil {
		t.Fatal(err)
	}
	if report.Completed != 8 || report.Failed != 0 {
		t.Fatalf("first drain: %+v", report)
	}
	if resumed() == 0 {
		t.Fatal("no batch resumed the cached session")
	}
	if refused() != 0 {
		t.Fatalf("unexpected resume refusals before restart: %d", refused())
	}
	// Cache outcome counters: batch #1 had no cached session (miss), every
	// later batch hit the cache. hit is source-side only while resumed
	// increments on both endpoints (which share this observer), so each
	// actual resume moves resumed by 2 and hit by 1.
	if miss() != 1 {
		t.Errorf("me.session.resume.miss = %d after first drain, want 1", miss())
	}
	if hit() == 0 || 2*hit() != resumed() {
		t.Errorf("me.session.resume.hit = %d, resumed = %d, want hit = resumed/2 > 0", hit(), resumed())
	}

	// Restart the destination: new ME instance, new epoch, accepted-session
	// table gone. The source still holds the old session in its cache.
	if err := b.Restart(); err != nil {
		t.Fatal(err)
	}

	// Second drain: the first batch presents the stale ticket, the fresh
	// ME refuses it, and the source falls back to a full handshake. All
	// migrations must still complete.
	states := launchApps(t, a, 8)
	orch2 := fleet.New(dc, fleet.Config{Workers: 1, BatchSize: 4, Obs: observer})
	report2, err := orch2.Execute(context.Background(), fleet.Drain("A"))
	if err != nil {
		t.Fatal(err)
	}
	if report2.Completed != 8 || report2.Failed != 0 {
		t.Fatalf("post-restart drain: %+v", report2)
	}
	if refused() == 0 {
		t.Fatal("restarted ME accepted (or never saw) a pre-restart resume ticket")
	}
	verifySurvival(t, states, []*cloud.Machine{b})
}
