package fleet

import (
	"sync/atomic"

	"repro/internal/transport"
)

// Meter wraps a transport.Messenger and counts the wire traffic crossing
// it (request plus reply bytes, and message count). Install it between
// the data center and its transport to measure what a fleet operation
// actually moves over the untrusted network:
//
//	net := transport.NewNetwork(lat)
//	meter := fleet.NewMeter(net)
//	dc, _ := cloud.NewDataCenterWithNetwork("dc", lat, meter)
type Meter struct {
	inner    transport.Messenger
	bytes    atomic.Int64
	messages atomic.Int64
}

var _ transport.Messenger = (*Meter)(nil)

// NewMeter wraps a Messenger.
func NewMeter(inner transport.Messenger) *Meter { return &Meter{inner: inner} }

// Register delegates to the wrapped Messenger.
func (m *Meter) Register(addr transport.Address, h transport.Handler) error {
	return m.inner.Register(addr, h)
}

// Unregister delegates to the wrapped Messenger.
func (m *Meter) Unregister(addr transport.Address) {
	m.inner.Unregister(addr)
}

// Send delegates to the wrapped Messenger, counting payload and reply.
func (m *Meter) Send(from, to transport.Address, kind string, payload []byte) ([]byte, error) {
	m.messages.Add(1)
	m.bytes.Add(int64(len(payload)))
	reply, err := m.inner.Send(from, to, kind, payload)
	if err == nil {
		m.bytes.Add(int64(len(reply)))
	}
	return reply, err
}

// Bytes returns the total request+reply bytes observed.
func (m *Meter) Bytes() int64 { return m.bytes.Load() }

// Messages returns the number of requests observed.
func (m *Meter) Messages() int64 { return m.messages.Load() }
