package fleet

import (
	"repro/internal/obs"
	"repro/internal/transport"
)

// Meter wraps a transport.Messenger and counts the wire traffic crossing
// it (request plus reply bytes, and message count). Install it between
// the data center and its transport to measure what a fleet operation
// actually moves over the untrusted network:
//
//	net := transport.NewNetwork(lat)
//	meter := fleet.NewMeter(net)
//	dc, _ := cloud.NewDataCenterWithNetwork("dc", lat, meter)
//
// The tallies live in an obs.Metrics registry — totals under "wire.msgs"
// and "wire.bytes", plus a per-message-kind breakdown under
// "wire.msgs.<kind>" and "wire.bytes.<kind>" — so a metrics snapshot
// shows which protocol (migration, replication, escrow, WAN forwards)
// moved the bytes. Bytes()/Messages() read the totals.
type Meter struct {
	inner   transport.Messenger
	metrics *obs.Metrics

	// Cached total handles: one atomic add per event, no map lookup.
	msgs  *obs.Counter
	bytes *obs.Counter
}

var _ transport.Messenger = (*Meter)(nil)

// NewMeter wraps a Messenger with a private metrics registry.
func NewMeter(inner transport.Messenger) *Meter {
	return NewMeterWithMetrics(inner, obs.NewMetrics())
}

// NewMeterWithMetrics wraps a Messenger, recording into the given
// registry (sharing one registry across meters, or with an Observer,
// folds wire accounting into the same snapshot).
func NewMeterWithMetrics(inner transport.Messenger, m *obs.Metrics) *Meter {
	if m == nil {
		m = obs.NewMetrics()
	}
	return &Meter{
		inner:   inner,
		metrics: m,
		msgs:    m.Counter("wire.msgs"),
		bytes:   m.Counter("wire.bytes"),
	}
}

// Metrics exposes the meter's registry (for snapshots and reports).
func (m *Meter) Metrics() *obs.Metrics { return m.metrics }

// Register delegates to the wrapped Messenger.
func (m *Meter) Register(addr transport.Address, h transport.Handler) error {
	return m.inner.Register(addr, h)
}

// Unregister delegates to the wrapped Messenger.
func (m *Meter) Unregister(addr transport.Address) {
	m.inner.Unregister(addr)
}

// Send delegates to the wrapped Messenger, counting payload and reply
// bytes against the totals and the per-kind breakdown.
func (m *Meter) Send(from, to transport.Address, kind string, payload []byte) ([]byte, error) {
	m.msgs.Add(1)
	m.bytes.Add(int64(len(payload)))
	kindMsgs := m.metrics.Counter("wire.msgs." + kind)
	kindBytes := m.metrics.Counter("wire.bytes." + kind)
	kindMsgs.Add(1)
	kindBytes.Add(int64(len(payload)))
	reply, err := m.inner.Send(from, to, kind, payload)
	if err == nil {
		m.bytes.Add(int64(len(reply)))
		kindBytes.Add(int64(len(reply)))
	}
	return reply, err
}

// Bytes returns the total request+reply bytes observed.
func (m *Meter) Bytes() int64 { return m.bytes.Value() }

// Messages returns the number of requests observed.
func (m *Meter) Messages() int64 { return m.msgs.Value() }
