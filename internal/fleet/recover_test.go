package fleet_test

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/fleet"
)

// newRackDC builds a data center whose first 2f+1 machines form one
// replica group (escrow-enabled rack).
func newRackDC(t *testing.T, f int, ids ...string) *cloud.DataCenter {
	t.Helper()
	dc := newReplDC(t, ids...)
	if _, err := dc.NewReplicaGroup("rack", f, ids[:2*f+1]...); err != nil {
		t.Fatal(err)
	}
	return dc
}

// TestRecoveryModeResurrectsLostEnclaves is the fleet half of restart-
// anywhere recovery: an evacuation in recovery mode finds the dead
// source's lost enclaves — migrations from a dead machine used to park
// forever — and resurrects each on a rack peer from the escrow, with
// counters and app state intact.
func TestRecoveryModeResurrectsLostEnclaves(t *testing.T) {
	dc := newRackDC(t, 1, "r1", "r2", "r3")
	r1 := mustMachine(t, dc, "r1")
	states := launchApps(t, r1, 6)
	r1.Kill()

	// Without recovery mode the dead source contributes nothing: there
	// is no live enclave to migrate and nothing to do.
	empty, err := fleet.Evacuate([]string{"r1"}, []string{"r2", "r3"}).Compile(dc)
	if err != nil {
		t.Fatal(err)
	}
	if len(empty) != 0 {
		t.Fatalf("plain evacuate of dead source compiled %d assignments", len(empty))
	}

	var recoveredEvents atomic.Int64
	orch := fleet.New(dc, fleet.Config{Workers: 4, OnEvent: func(e fleet.Event) {
		if e.Type == fleet.EventRecovered {
			recoveredEvents.Add(1)
		}
	}})
	report, err := orch.Execute(context.Background(), fleet.RecoverLost([]string{"r1"}, nil))
	if err != nil {
		t.Fatal(err)
	}
	if report.Completed != 6 || report.Failed != 0 {
		t.Fatalf("recovery report: %s", report)
	}
	if n := recoveredEvents.Load(); n != 6 {
		t.Fatalf("saw %d EventRecovered, want 6", n)
	}
	for _, e := range report.Journal.Entries() {
		if !e.Recovered || e.Status != fleet.StatusCompleted {
			t.Fatalf("journal entry not a completed recovery: %+v", e)
		}
	}
	if n := len(r1.LostApps()); n != 0 {
		t.Fatalf("lost manifest not drained: %d left", n)
	}
	verifySurvival(t, states, []*cloud.Machine{mustMachine(t, dc, "r2"), mustMachine(t, dc, "r3")})

	// The journal snapshot round-trips the recovery flag.
	raw, err := report.Journal.Encode()
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := fleet.DecodeJournal(raw)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range decoded.Entries() {
		if !e.Recovered {
			t.Fatal("Recovered flag lost in snapshot round trip")
		}
	}
}

// TestRecoveryModeMixedSources drains a half-failed rack in one plan:
// the live source's enclaves migrate (its replica role handed to the
// spare), the dead source's are resurrected on its rack peer.
func TestRecoveryModeMixedSources(t *testing.T) {
	dc := newRackDC(t, 1, "r1", "r2", "r3", "spare")
	r1, r2 := mustMachine(t, dc, "r1"), mustMachine(t, dc, "r2")
	deadStates := launchApps(t, r1, 3)
	// The live source's apps need names distinct from launchApps' (two
	// same-identity enclaves would contend for one delivery slot).
	liveStates := make(map[string]*appState, 2)
	for _, name := range []string{"live-a", "live-b"} {
		app, err := r2.LaunchApp(testImage(name), core.NewMemoryStorage(), core.InitNew)
		if err != nil {
			t.Fatal(err)
		}
		ctr, _, err := app.Library.CreateCounter()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := app.Library.IncrementCounter(ctr); err != nil {
			t.Fatal(err)
		}
		sealed, err := app.Library.SealMigratable([]byte("label"), []byte("secret-"+name))
		if err != nil {
			t.Fatal(err)
		}
		liveStates[name] = &appState{ctr: ctr, value: 1, sealed: sealed}
	}
	r1.Kill()

	plan := fleet.RecoverLost([]string{"r1", "r2"}, []string{"r3", "spare"})
	orch := fleet.New(dc, fleet.Config{Workers: 4})
	report, err := orch.Execute(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if report.Completed != 5 {
		t.Fatalf("mixed plan: %s", report)
	}
	if report.ReplicaHandoffs != 1 {
		t.Fatalf("replica handoffs = %d, want 1 (r2's role to the spare)", report.ReplicaHandoffs)
	}
	r3, spare := mustMachine(t, dc, "r3"), mustMachine(t, dc, "spare")
	// The dead source's enclaves can only land on rack peers; the live
	// source's may land on either target.
	verifySurvival(t, deadStates, []*cloud.Machine{r3})
	verifySurvival(t, liveStates, []*cloud.Machine{r3, spare})
	recoveries := 0
	for _, e := range report.Journal.Entries() {
		if e.Recovered {
			recoveries++
		}
	}
	if recoveries != 3 {
		t.Fatalf("%d recovery entries, want 3", recoveries)
	}
}

// TestMidPlanSnapshots pins the orchestrator-resilience half: with a
// SnapshotStore configured, the journal is persisted after every
// migration outcome, not only at plan end — a crash mid-plan leaves
// durable progress behind.
func TestMidPlanSnapshots(t *testing.T) {
	dc := newReplDC(t, "A", "B")
	launchApps(t, mustMachine(t, dc, "A"), 5)
	store := core.NewMemoryStorage()
	orch := fleet.New(dc, fleet.Config{Workers: 2, SnapshotStore: store})
	report, err := orch.Execute(context.Background(), fleet.Drain("A"))
	if err != nil {
		t.Fatal(err)
	}
	if report.Completed != 5 {
		t.Fatalf("drain: %s", report)
	}
	// One snapshot per recorded outcome plus the final one.
	if store.Versions() < 6 {
		t.Fatalf("only %d snapshots written mid-plan", store.Versions())
	}
	raw, err := store.Load()
	if err != nil {
		t.Fatal(err)
	}
	final, err := fleet.DecodeJournal(raw)
	if err != nil {
		t.Fatal(err)
	}
	if final.Count(fleet.StatusCompleted) != 5 {
		t.Fatalf("final snapshot records %d completions", final.Count(fleet.StatusCompleted))
	}
}

// TestResumeParkedOnStart pins the auto-resume half of orchestrator
// resilience: a fresh orchestrator finds the parked migrations of a
// crashed predecessor through the source MEs' outstanding tokens and
// finishes them, no journal required.
func TestResumeParkedOnStart(t *testing.T) {
	dc := newReplDC(t, "A", "B", "C")
	states := launchApps(t, mustMachine(t, dc, "A"), 8)
	mustMachine(t, dc, "C").Kill()

	// First orchestrator drains onto the dead machine and "crashes":
	// every migration parks at the source ME.
	orch := fleet.New(dc, fleet.Config{Workers: 4, MaxAttempts: 2, RetryBackoff: time.Millisecond})
	report, err := orch.Execute(context.Background(),
		fleet.Plan{Intent: fleet.IntentDrain, Sources: []string{"A"}, Targets: []string{"C"}})
	if err != nil {
		t.Fatal(err)
	}
	if report.Failed != 8 {
		t.Fatalf("setup drain: %s", report)
	}

	// A brand-new orchestrator resumes everything on start.
	orch2 := fleet.New(dc, fleet.Config{Workers: 4})
	resumed, err := orch2.ResumeParked(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Completed != 8 || resumed.Failed != 0 {
		t.Fatalf("resume: %s", resumed)
	}
	verifySurvival(t, states, []*cloud.Machine{mustMachine(t, dc, "B")})
	// Idempotent: nothing left to resume.
	again, err := orch2.ResumeParked(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if again.Planned != 0 {
		t.Fatalf("second resume planned %d migrations", again.Planned)
	}
}
