package fleet_test

import (
	"context"
	"crypto/ed25519"
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/sgx"
	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/xcrypto"
)

func testImage(name string) *sgx.Image {
	key := xcrypto.DeriveKey([]byte("fleet-test"), "signer")
	return &sgx.Image{Name: name, Version: 1, Code: []byte(name), SignerPublicKey: ed25519.PublicKey(key[:])}
}

// appState is what a test expects to survive a migration.
type appState struct {
	ctr    int
	value  uint32
	sealed []byte
}

// launchApps launches n uniquely-named apps on m, each with one counter
// incremented a distinct number of times and one sealed secret.
func launchApps(t testing.TB, m *cloud.Machine, n int) map[string]*appState {
	t.Helper()
	states := make(map[string]*appState, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("app-%03d", i)
		app, err := m.LaunchApp(testImage(name), core.NewMemoryStorage(), core.InitNew)
		if err != nil {
			t.Fatalf("launch %s: %v", name, err)
		}
		ctr, _, err := app.Library.CreateCounter()
		if err != nil {
			t.Fatal(err)
		}
		incs := uint32(i%5 + 1)
		for j := uint32(0); j < incs; j++ {
			if _, err := app.Library.IncrementCounter(ctr); err != nil {
				t.Fatal(err)
			}
		}
		sealed, err := app.Library.SealMigratable([]byte("label"), []byte("secret-"+name))
		if err != nil {
			t.Fatal(err)
		}
		states[name] = &appState{ctr: ctr, value: incs, sealed: sealed}
	}
	return states
}

// findApp locates a live app by image name across the given machines.
func findApp(machines []*cloud.Machine, name string) (*cloud.App, *cloud.Machine) {
	for _, m := range machines {
		for _, a := range m.Apps() {
			if a.Image().Name == name {
				return a, m
			}
		}
	}
	return nil, nil
}

// verifySurvival checks that every app's counter value and sealed secret
// survived migration onto one of the allowed machines.
func verifySurvival(t *testing.T, states map[string]*appState, allowed []*cloud.Machine) {
	t.Helper()
	for name, st := range states {
		app, host := findApp(allowed, name)
		if app == nil {
			t.Fatalf("%s: not found on any allowed machine", name)
		}
		v, err := app.Library.ReadCounter(st.ctr)
		if err != nil {
			t.Fatalf("%s on %s: read counter: %v", name, host.ID(), err)
		}
		if v != st.value {
			t.Fatalf("%s: counter = %d, want %d (rollback or fork)", name, v, st.value)
		}
		pt, _, err := app.Library.UnsealMigratable(st.sealed)
		if err != nil {
			t.Fatalf("%s: unseal: %v", name, err)
		}
		if string(pt) != "secret-"+name {
			t.Fatalf("%s: sealed data corrupted", name)
		}
	}
}

// TestDrainLargeFleet is the headline scenario: a 3-machine data center
// with 110 enclaves on one machine is drained with bounded concurrency;
// every migration completes, every source is frozen, all counter values
// survive, and the journal summarizes latency via internal/stats.
func TestDrainLargeFleet(t *testing.T) {
	lat := sim.NewInstantLatency()
	net := transport.NewNetwork(lat)
	meter := fleet.NewMeter(net)
	dc, err := cloud.NewDataCenterWithNetwork("dc", lat, meter)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := dc.AddMachine("A")
	b, _ := dc.AddMachine("B")
	c, _ := dc.AddMachine("C")

	const n = 110
	states := launchApps(t, a, n)
	if got := a.AppCount(); got != n {
		t.Fatalf("inventory on A = %d, want %d", got, n)
	}

	orch := fleet.New(dc, fleet.Config{Workers: 16, Meter: meter})
	report, err := orch.Execute(context.Background(), fleet.Drain("A"))
	if err != nil {
		t.Fatal(err)
	}
	if report.Completed != n || report.Failed != 0 || report.Canceled != 0 {
		t.Fatalf("report: %+v", report)
	}
	if got := a.AppCount(); got != 0 {
		t.Fatalf("A still hosts %d apps after drain", got)
	}
	if a.ME.PendingOutgoing() != 0 {
		t.Fatalf("source ME still holds %d unconfirmed migrations", a.ME.PendingOutgoing())
	}
	// Load ended up spread across both destinations.
	if b.AppCount() == 0 || c.AppCount() == 0 {
		t.Fatalf("lopsided drain: B=%d C=%d", b.AppCount(), c.AppCount())
	}
	if b.AppCount()+c.AppCount() != n {
		t.Fatalf("apps lost: B=%d C=%d, want total %d", b.AppCount(), c.AppCount(), n)
	}
	verifySurvival(t, states, []*cloud.Machine{b, c})

	for _, e := range report.Journal.Entries() {
		if !e.SourceFrozen {
			t.Fatalf("%s: source not frozen after migration", e.App)
		}
		if !e.DoneConfirmed {
			t.Fatalf("%s: DONE confirmation missing", e.App)
		}
		if e.StateBytes <= 0 {
			t.Fatalf("%s: state bytes not recorded", e.App)
		}
	}
	if !report.HasLatency || report.Latency.N != n {
		t.Fatalf("latency summary missing or wrong N: %+v", report.Latency)
	}
	if report.Latency.Mean <= 0 || report.Latency.CIHalf < 0 {
		t.Fatalf("implausible latency summary: %s", report.Latency)
	}
	if report.WireBytes == 0 || report.WireMessages == 0 {
		t.Fatal("meter observed no wire traffic")
	}
	if report.Throughput <= 0 {
		t.Fatalf("throughput = %v", report.Throughput)
	}
}

// TestDrainDestinationRestartMidDrain kills one destination machine the
// moment the first migration targets it: in-flight and later deliveries
// to it must be re-targeted to the surviving machine without ever opening
// a fork window.
func TestDrainDestinationRestartMidDrain(t *testing.T) {
	dc, err := cloud.NewDataCenter("dc", sim.NewInstantLatency())
	if err != nil {
		t.Fatal(err)
	}
	a, _ := dc.AddMachine("A")
	b, _ := dc.AddMachine("B")
	c, _ := dc.AddMachine("C")

	const n = 12
	states := launchApps(t, a, n)

	var once sync.Once
	cfg := fleet.Config{
		Workers:      4,
		MaxAttempts:  5,
		RetryBackoff: time.Millisecond,
		OnEvent: func(e fleet.Event) {
			// Simulated host failure: machine C reboots just as the first
			// migration targeting it begins; its ME enclave dies with it.
			if e.Type == fleet.EventStart && e.Dest == "C" {
				once.Do(c.HW.Restart)
			}
		},
	}
	orch := fleet.New(dc, cfg)
	plan := fleet.Plan{Intent: fleet.IntentDrain, Sources: []string{"A"}, Policy: &fleet.RoundRobin{}}
	report, err := orch.Execute(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if report.Completed != n {
		for _, e := range report.Journal.Entries() {
			t.Logf("%s -> %s (planned %s): %s attempts=%d redirects=%d err=%q",
				e.App, e.Dest, e.PlannedDest, e.Status, e.Attempts, e.Redirects, e.Err)
		}
		t.Fatalf("completed = %d, want %d", report.Completed, n)
	}
	// Everything must have landed on B; C is down.
	if got := b.AppCount(); got != n {
		t.Fatalf("B hosts %d apps, want %d", got, n)
	}
	if got := c.AppCount(); got != 0 {
		t.Fatalf("dead machine C hosts %d live apps", got)
	}
	redirects := 0
	for _, e := range report.Journal.Entries() {
		if !e.SourceFrozen {
			t.Fatalf("%s: source not frozen (fork window)", e.App)
		}
		if e.Dest == "C" {
			t.Fatalf("%s: journal claims completion on dead machine", e.App)
		}
		redirects += e.Redirects
	}
	if redirects == 0 {
		t.Fatal("no redirects recorded despite mid-drain destination restart")
	}
	verifySurvival(t, states, []*cloud.Machine{b})
}

// TestRedirectToUncompiledDestination kills the only destination the
// compiled plan uses; the orchestrator must still find the healthy
// machine the compiler never assigned anything to.
func TestRedirectToUncompiledDestination(t *testing.T) {
	dc, err := cloud.NewDataCenter("dc", sim.NewInstantLatency())
	if err != nil {
		t.Fatal(err)
	}
	a, _ := dc.AddMachine("A")
	b, _ := dc.AddMachine("B")
	c, _ := dc.AddMachine("C")
	states := launchApps(t, a, 1) // one app: the plan compiles to a single dest

	var once sync.Once
	cfg := fleet.Config{
		Workers:      1,
		MaxAttempts:  4,
		RetryBackoff: time.Millisecond,
		OnEvent: func(e fleet.Event) {
			if e.Type == fleet.EventStart {
				// Kill whichever machine the plan chose as destination.
				if m, ok := dc.Machine(e.Dest); ok {
					once.Do(m.HW.Restart)
				}
			}
		},
	}
	report, err := fleet.New(dc, cfg).Execute(context.Background(), fleet.Drain("A"))
	if err != nil {
		t.Fatal(err)
	}
	if report.Completed != 1 {
		t.Fatalf("report: %+v (entries: %+v)", report, report.Journal.Entries())
	}
	e := report.Journal.Entries()[0]
	if e.Redirects == 0 || e.Dest == e.PlannedDest {
		t.Fatalf("expected redirect away from dead %s, got entry %+v", e.PlannedDest, e)
	}
	verifySurvival(t, states, []*cloud.Machine{b, c})
}

// TestDrainAllDestinationsDownFailsCleanly verifies the reported-failure
// path and its recovery. Phase 1: the only destination dies at the first
// migration, so every migration exhausts its attempt budget and is
// reported failed — sources frozen, data parked at the source ME,
// nothing lost and nothing forked. Phase 2: a replacement machine is
// provisioned and the same drain plan re-executed; the orchestrator
// resumes the parked migrations via their tokens and completes them.
func TestDrainAllDestinationsDownFailsCleanly(t *testing.T) {
	dc, err := cloud.NewDataCenter("dc", sim.NewInstantLatency())
	if err != nil {
		t.Fatal(err)
	}
	a, _ := dc.AddMachine("A")
	b, _ := dc.AddMachine("B")

	const n = 3
	states := launchApps(t, a, n)

	var once sync.Once
	orch := fleet.New(dc, fleet.Config{
		Workers: 2, MaxAttempts: 2, RetryBackoff: time.Millisecond,
		OnEvent: func(e fleet.Event) {
			if e.Type == fleet.EventStart {
				once.Do(b.HW.Restart) // the only destination dies immediately
			}
		},
	})
	report, err := orch.Execute(context.Background(), fleet.Drain("A"))
	if err != nil {
		t.Fatal(err)
	}
	if report.Failed != n || report.Completed != 0 {
		t.Fatalf("report: %+v", report)
	}
	for _, e := range report.Journal.Entries() {
		if e.Err == "" {
			t.Fatalf("%s: failed entry missing its error", e.App)
		}
		if !e.SourceFrozen {
			t.Fatalf("%s: failed migration left source unfrozen", e.App)
		}
	}
	// The data is held at the source ME awaiting a later redirect: no
	// state was lost, and the frozen sources cannot fork.
	if got := a.ME.PendingOutgoing(); got != n {
		t.Fatalf("source ME holds %d pending migrations, want %d", got, n)
	}
	for _, app := range a.Apps() {
		if !app.Library.Frozen() {
			t.Fatalf("%s: source library operable after failed migration", app.Image().Name)
		}
	}

	// Phase 2: provision a replacement and re-run the drain. The frozen
	// apps' parked migrations resume through their outstanding tokens.
	c, err := dc.AddMachine("C")
	if err != nil {
		t.Fatal(err)
	}
	orch2 := fleet.New(dc, fleet.Config{Workers: 2})
	report2, err := orch2.Execute(context.Background(), fleet.Drain("A"))
	if err != nil {
		t.Fatal(err)
	}
	if report2.Completed != n || report2.Failed != 0 {
		for _, e := range report2.Journal.Entries() {
			t.Logf("%s -> %s: %s err=%q", e.App, e.Dest, e.Status, e.Err)
		}
		t.Fatalf("resume report: %+v", report2)
	}
	if got := a.ME.PendingOutgoing(); got != 0 {
		t.Fatalf("source ME still holds %d pending migrations after resume", got)
	}
	verifySurvival(t, states, []*cloud.Machine{c})
}

// TestResumeDeliveredToLiveDestination covers the fork-hazard resume
// case: an earlier, partially-run migration already delivered the
// envelope to machine B (still alive), then a new plan runs whose policy
// would prefer machine C. Re-sending to C would leave two deliverable
// copies, so the orchestrator must finish the restore on B instead.
func TestResumeDeliveredToLiveDestination(t *testing.T) {
	dc, err := cloud.NewDataCenter("dc", sim.NewInstantLatency())
	if err != nil {
		t.Fatal(err)
	}
	a, _ := dc.AddMachine("A")
	b, _ := dc.AddMachine("B")
	c, _ := dc.AddMachine("C")
	states := launchApps(t, a, 1)

	// A bystander app on B makes C the least-loaded machine, so a naive
	// resume-by-policy would pick C.
	if _, err := b.LaunchApp(testImage("bystander"), core.NewMemoryStorage(), core.InitNew); err != nil {
		t.Fatal(err)
	}

	// The earlier plan got as far as delivering to B, then stopped
	// (orchestrator crash before restore).
	app := a.Apps()[0]
	if err := app.Library.StartMigration(b.MEAddress()); err != nil {
		t.Fatal(err)
	}
	if got := b.ME.PendingIncoming(); got != 1 {
		t.Fatalf("setup: B holds %d pending envelopes, want 1", got)
	}

	report, err := fleet.New(dc, fleet.Config{Workers: 2}).Execute(context.Background(), fleet.Drain("A"))
	if err != nil {
		t.Fatal(err)
	}
	if report.Completed != 1 {
		t.Fatalf("report: %+v (entries: %+v)", report, report.Journal.Entries())
	}
	e := report.Journal.Entries()[0]
	if e.Dest != "B" {
		t.Fatalf("resumed migration landed on %s; must finish on B where the data sits", e.Dest)
	}
	if got := c.ME.PendingIncoming() + b.ME.PendingIncoming(); got != 0 {
		t.Fatalf("%d undelivered envelope copies remain (fork risk)", got)
	}
	verifySurvival(t, states, []*cloud.Machine{b})
}

// TestSecondPendingDeliveryRefused pins the core guarantee the resume
// logic depends on: while one migration for an enclave identity is
// parked at a destination ME, a second same-identity delivery is refused
// rather than silently overwriting the first one's only deliverable copy.
func TestSecondPendingDeliveryRefused(t *testing.T) {
	dc, err := cloud.NewDataCenter("dc", sim.NewInstantLatency())
	if err != nil {
		t.Fatal(err)
	}
	a, _ := dc.AddMachine("A")
	b, _ := dc.AddMachine("B")
	img := testImage("twin")
	app1, err := a.LaunchApp(img, core.NewMemoryStorage(), core.InitNew)
	if err != nil {
		t.Fatal(err)
	}
	app2, err := a.LaunchApp(img, core.NewMemoryStorage(), core.InitNew)
	if err != nil {
		t.Fatal(err)
	}

	if err := app1.Library.StartMigration(b.MEAddress()); err != nil {
		t.Fatal(err)
	}
	// Same identity, same destination, first envelope not yet restored.
	if err := app2.Library.StartMigration(b.MEAddress()); !errors.Is(err, core.ErrMigrationPending) {
		t.Fatalf("second delivery: %v, want ErrMigrationPending (refused, parked at source)", err)
	}
	if got := b.ME.PendingIncoming(); got != 1 {
		t.Fatalf("destination holds %d envelopes, want 1", got)
	}
	// Restore the first, then the parked second goes through on retry.
	if _, err := b.LaunchApp(img, core.NewMemoryStorage(), core.InitMigrated); err != nil {
		t.Fatal(err)
	}
	if err := a.ME.RetryOutgoing(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.LaunchApp(img, core.NewMemoryStorage(), core.InitMigrated); err != nil {
		t.Fatalf("second migration after retry: %v", err)
	}
}

// TestIdempotentRedelivery pins the ack-loss recovery behavior: re-sending
// the very same migration (same done-token) to a destination that already
// holds it is acknowledged idempotently — one stored copy, no refusal.
func TestIdempotentRedelivery(t *testing.T) {
	dc, err := cloud.NewDataCenter("dc", sim.NewInstantLatency())
	if err != nil {
		t.Fatal(err)
	}
	a, _ := dc.AddMachine("A")
	b, _ := dc.AddMachine("B")
	img := testImage("ack-lost")
	app, err := a.LaunchApp(img, core.NewMemoryStorage(), core.InitNew)
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Library.StartMigration(b.MEAddress()); err != nil {
		t.Fatal(err)
	}
	// Simulate the source believing delivery failed (lost ack): re-send
	// the identical envelope via Redirect to the same destination.
	if err := a.ME.Redirect(app.Library.MigrationToken(), b.MEAddress()); err != nil {
		t.Fatalf("identical re-delivery refused: %v", err)
	}
	if got := b.ME.PendingIncoming(); got != 1 {
		t.Fatalf("destination holds %d envelopes after re-delivery, want 1", got)
	}
	if _, err := b.LaunchApp(img, core.NewMemoryStorage(), core.InitMigrated); err != nil {
		t.Fatal(err)
	}
	done, err := app.Library.MigrationComplete()
	if err != nil || !done {
		t.Fatalf("migration not confirmed after re-delivered restore: done=%v err=%v", done, err)
	}
	// Once DONE has arrived, any further redirect must be refused: the
	// stale envelope re-sent anywhere would fork the restored enclave.
	if err := a.ME.Redirect(app.Library.MigrationToken(), b.MEAddress()); !errors.Is(err, core.ErrMigrationDone) {
		t.Fatalf("redirect of completed migration: %v, want ErrMigrationDone", err)
	}
	if got := b.ME.PendingIncoming(); got != 0 {
		t.Fatalf("stale envelope re-delivered after completion (%d pending)", got)
	}
}

// TestDrainSameImageSerialized migrates many enclaves that share one
// MRENCLAVE to a single destination: the destination ME can hold only one
// pending envelope per identity, so the orchestrator must serialize them
// — losing none, forking none.
func TestDrainSameImageSerialized(t *testing.T) {
	dc, err := cloud.NewDataCenter("dc", sim.NewInstantLatency())
	if err != nil {
		t.Fatal(err)
	}
	a, _ := dc.AddMachine("A")
	b, _ := dc.AddMachine("B")

	const n = 10
	img := testImage("shared-tenant")
	want := make([]uint32, 0, n)
	for i := 0; i < n; i++ {
		app, err := a.LaunchApp(img, core.NewMemoryStorage(), core.InitNew)
		if err != nil {
			t.Fatal(err)
		}
		ctr, _, err := app.Library.CreateCounter()
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j <= i; j++ {
			if _, err := app.Library.IncrementCounter(ctr); err != nil {
				t.Fatal(err)
			}
		}
		want = append(want, uint32(i+1))
	}

	orch := fleet.New(dc, fleet.Config{Workers: 8})
	report, err := orch.Execute(context.Background(), fleet.Drain("A"))
	if err != nil {
		t.Fatal(err)
	}
	if report.Completed != n {
		t.Fatalf("completed = %d, want %d", report.Completed, n)
	}
	apps := b.Apps()
	if len(apps) != n {
		t.Fatalf("B hosts %d apps, want %d", len(apps), n)
	}
	var got []uint32
	for _, app := range apps {
		v, err := app.Library.ReadCounter(0)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, v)
	}
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("counter multiset = %v, want %v", got, want)
		}
	}
}

// TestExecuteCancellation cancels mid-drain: started migrations finish or
// cancel cleanly, queued ones are journaled as canceled, and the report
// stays consistent.
func TestExecuteCancellation(t *testing.T) {
	dc, err := cloud.NewDataCenter("dc", sim.NewInstantLatency())
	if err != nil {
		t.Fatal(err)
	}
	a, _ := dc.AddMachine("A")
	dc.AddMachine("B")

	const n = 40
	launchApps(t, a, n)

	ctx, cancel := context.WithCancel(context.Background())
	var once sync.Once
	cfg := fleet.Config{
		Workers: 2,
		OnEvent: func(e fleet.Event) {
			if e.Type == fleet.EventCompleted {
				once.Do(cancel)
			}
		},
	}
	orch := fleet.New(dc, cfg)
	report, err := orch.Execute(ctx, fleet.Drain("A"))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if report == nil {
		t.Fatal("no report on cancellation")
	}
	if report.Completed+report.Failed+report.Canceled != n {
		t.Fatalf("journal accounts for %d of %d migrations",
			report.Completed+report.Failed+report.Canceled, n)
	}
	if report.Canceled == 0 {
		t.Fatal("expected canceled migrations")
	}
	// Canceled-before-start migrations must leave their apps operable.
	for _, app := range a.Apps() {
		if app.Library.Frozen() {
			continue // froze before cancellation; data parked at the ME
		}
		if _, err := app.Library.ReadCounter(0); err != nil {
			t.Fatalf("unstarted app unusable after cancellation: %v", err)
		}
	}
}

// TestRebalanceCompile checks the rebalance planner levels an uneven
// inventory and the executor carries it out.
func TestRebalancePlan(t *testing.T) {
	dc, err := cloud.NewDataCenter("dc", sim.NewInstantLatency())
	if err != nil {
		t.Fatal(err)
	}
	a, _ := dc.AddMachine("A")
	b, _ := dc.AddMachine("B")
	c, _ := dc.AddMachine("C")
	launchApps(t, a, 9)

	orch := fleet.New(dc, fleet.Config{Workers: 4})
	report, err := orch.Execute(context.Background(), fleet.Rebalance())
	if err != nil {
		t.Fatal(err)
	}
	if report.Failed != 0 || report.Canceled != 0 {
		t.Fatalf("report: %+v", report)
	}
	counts := []int{a.AppCount(), b.AppCount(), c.AppCount()}
	for _, n := range counts {
		if n != 3 {
			t.Fatalf("unbalanced after rebalance: %v", counts)
		}
	}
}

// TestEvacuatePlanTargets restricts destinations to an explicit target
// set and rejects overlapping source/target sets.
func TestEvacuatePlanTargets(t *testing.T) {
	dc, err := cloud.NewDataCenter("dc", sim.NewInstantLatency())
	if err != nil {
		t.Fatal(err)
	}
	a, _ := dc.AddMachine("A")
	b, _ := dc.AddMachine("B")
	c, _ := dc.AddMachine("C")
	launchApps(t, a, 6)

	orch := fleet.New(dc, fleet.Config{Workers: 4})
	report, err := orch.Execute(context.Background(), fleet.Evacuate([]string{"A"}, []string{"C"}))
	if err != nil {
		t.Fatal(err)
	}
	if report.Completed != 6 {
		t.Fatalf("completed = %d, want 6", report.Completed)
	}
	if b.AppCount() != 0 || c.AppCount() != 6 {
		t.Fatalf("evacuation ignored targets: B=%d C=%d", b.AppCount(), c.AppCount())
	}

	if _, err := fleet.Evacuate([]string{"A"}, []string{"A"}).Compile(dc); err == nil {
		t.Fatal("source==target accepted")
	}
	if _, err := fleet.Drain("nope").Compile(dc); !errors.Is(err, fleet.ErrUnknownMachine) {
		t.Fatalf("unknown machine: %v", err)
	}
	if _, err := (fleet.Plan{Intent: fleet.IntentDrain}).Compile(dc); !errors.Is(err, fleet.ErrEmptyPlan) {
		t.Fatalf("empty plan: %v", err)
	}
}

// TestPolicies exercises the placement policies directly.
func TestPolicies(t *testing.T) {
	dc, err := cloud.NewDataCenter("dc", sim.NewInstantLatency())
	if err != nil {
		t.Fatal(err)
	}
	a, _ := dc.AddMachine("A")
	b, _ := dc.AddMachine("B")
	machines := []*cloud.Machine{a, b}

	ll := fleet.LeastLoaded{}
	m, err := ll.Pick(nil, machines, map[string]int{"A": 3, "B": 1})
	if err != nil || m.ID() != "B" {
		t.Fatalf("least-loaded picked %v (%v)", m, err)
	}
	m, _ = ll.Pick(nil, machines, map[string]int{"A": 2, "B": 2})
	if m.ID() != "A" {
		t.Fatalf("tie-break picked %s, want A", m.ID())
	}

	rr := &fleet.RoundRobin{}
	first, _ := rr.Pick(nil, machines, nil)
	second, _ := rr.Pick(nil, machines, nil)
	third, _ := rr.Pick(nil, machines, nil)
	if first.ID() == second.ID() || first.ID() != third.ID() {
		t.Fatalf("round robin sequence: %s %s %s", first.ID(), second.ID(), third.ID())
	}

	if _, err := ll.Pick(nil, nil, nil); !errors.Is(err, fleet.ErrNoDestination) {
		t.Fatalf("empty candidates: %v", err)
	}
}
