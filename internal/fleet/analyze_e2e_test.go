package fleet_test

import (
	"context"
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/obs/analyze"
)

// TestCriticalPathMatchesMeasuredLatency is the analyze plane's
// acceptance test: the per-phase critical-path breakdown of a real
// plan's traces must account for the measured fleet.migration.latency —
// the summed phase durations (per trace, they partition the root span's
// window) land within 5% of the histogram's mean, so an operator can
// trust the breakdown to explain where the measured microseconds went.
func TestCriticalPathMatchesMeasuredLatency(t *testing.T) {
	dc := newRackDC(t, 1, "m1", "m2", "m3", "m4")
	observer := obs.NewObserver()
	dc.SetObserver(observer)
	m1 := mustMachine(t, dc, "m1")
	const apps = 12
	launchApps(t, m1, apps)

	orch := fleet.New(dc, fleet.Config{Workers: 4, Obs: observer})
	report, err := orch.Execute(context.Background(), fleet.Drain("m1"))
	if err != nil {
		t.Fatal(err)
	}
	if report.Completed != apps {
		t.Fatalf("drain report: %s", report)
	}

	sum := analyze.Summarize(observer.Tracer.Spans(), "fleet.migrate")
	if sum.Count != apps {
		t.Fatalf("summarized %d fleet.migrate traces, want %d", sum.Count, apps)
	}
	var phaseMean time.Duration
	for _, p := range sum.Phases {
		phaseMean += p.Total / time.Duration(sum.Count)
	}

	h := observer.Metrics.Snapshot().Histograms["fleet.migration.latency"]
	if h.Count != apps {
		t.Fatalf("latency histogram count = %d, want %d", h.Count, apps)
	}
	diff := phaseMean - h.Mean
	if diff < 0 {
		diff = -diff
	}
	if float64(diff) > 0.05*float64(h.Mean) {
		t.Fatalf("critical-path phase sum mean %v vs measured latency mean %v: off by %v (> 5%%)",
			phaseMean, h.Mean, diff)
	}

	// The breakdown names real phases: transfer work must be attributed,
	// and nothing should fall into "other" on the instrumented path.
	phases := map[string]time.Duration{}
	for _, p := range sum.Phases {
		phases[p.Phase] = p.Total
	}
	if phases[analyze.PhaseTransfer] == 0 {
		t.Errorf("no time attributed to transfer: %+v", sum.Phases)
	}
	if other := phases[analyze.PhaseOther]; float64(other) > 0.01*float64(sum.Total) {
		t.Errorf("%.1f%% of critical path unattributed (other) — span name missing from the phase map",
			100*float64(other)/float64(sum.Total))
	}
}

// TestUnavailabilityLedgerFromPlan checks the derived downtime windows
// on a real drain: every migrated enclave gets one freeze window
// (lib.freeze start -> lib.resume end) and the ledger publishes the
// unavail.freeze.window histogram exactly once per window.
func TestUnavailabilityLedgerFromPlan(t *testing.T) {
	dc := newRackDC(t, 1, "m1", "m2", "m3", "m4")
	observer := obs.NewObserver()
	dc.SetObserver(observer)
	m1 := mustMachine(t, dc, "m1")
	const apps = 6
	launchApps(t, m1, apps)

	orch := fleet.New(dc, fleet.Config{Workers: 2, Obs: observer})
	if _, err := orch.Execute(context.Background(), fleet.Drain("m1")); err != nil {
		t.Fatal(err)
	}

	ld := analyze.NewLedger()
	windows := ld.Update(observer)
	freezes := 0
	for _, w := range windows {
		if w.Kind == analyze.WindowFreeze {
			freezes++
			if w.Dur <= 0 {
				t.Errorf("non-positive freeze window: %+v", w)
			}
		}
	}
	if freezes != apps {
		t.Fatalf("derived %d freeze windows, want %d (windows: %+v)", freezes, apps, windows)
	}
	ld.Update(observer) // idempotent
	h := observer.Metrics.Snapshot().Histograms["unavail.freeze.window"]
	if h.Count != apps {
		t.Fatalf("unavail.freeze.window count = %d, want %d", h.Count, apps)
	}
}
