package fleet

import (
	"context"
	"crypto/ed25519"
	"testing"
	"time"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/obs/health"
	"repro/internal/sgx"
	"repro/internal/sim"
	"repro/internal/xcrypto"
)

func costImage(name string) *sgx.Image {
	key := xcrypto.DeriveKey([]byte("costaware-test"), "signer")
	return &sgx.Image{
		Name:            name,
		Version:         1,
		Code:            []byte("cost:" + name),
		SignerPublicKey: ed25519.PublicKey(key[:]),
	}
}

// TestCostAwarePacksByMigrationCost: with history showing one app is
// vastly more expensive to move (big state, many counters), a drain
// isolates it while the cheap apps share the other destination —
// where least-loaded would split purely by count.
func TestCostAwarePacksByMigrationCost(t *testing.T) {
	dc, err := cloud.NewDataCenter("cost-dc", sim.NewInstantLatency())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"m0", "m1", "m2"} {
		if _, err := dc.AddMachine(id); err != nil {
			t.Fatal(err)
		}
	}
	m0, _ := dc.Machine("m0")
	for _, name := range []string{"big", "small-a", "small-b", "small-c"} {
		app, err := m0.LaunchApp(costImage(name), core.NewMemoryStorage(), core.InitNew)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := app.Library.CreateCounter(); err != nil {
			t.Fatal(err)
		}
	}

	// History from earlier plans: "big" moves 200 kB and 50 counters,
	// the smalls are trivial.
	hist := NewJournal()
	hist.Record(Entry{App: "big", Status: StatusCompleted, StateBytes: 200_000, Counters: 50})
	for _, name := range []string{"small-a", "small-b", "small-c"} {
		hist.Record(Entry{App: name, Status: StatusCompleted, StateBytes: 100, Counters: 1})
	}

	policy := NewCostAware(hist)
	plan := Drain("m0")
	plan.Policy = policy
	orch := New(dc, Config{Workers: 1})
	report, err := orch.Execute(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if report.Completed != 4 || report.Failed != 0 {
		t.Fatalf("completed=%d failed=%d, want 4/0", report.Completed, report.Failed)
	}

	m1, _ := dc.Machine("m1")
	m2, _ := dc.Machine("m2")
	var bigHost, smallHost *cloud.Machine
	for _, m := range []*cloud.Machine{m1, m2} {
		for _, app := range m.Apps() {
			if app.Image().Name == "big" {
				bigHost = m
			} else {
				smallHost = m
			}
		}
	}
	if bigHost == nil || smallHost == nil {
		t.Fatal("apps not placed")
	}
	if bigHost == smallHost {
		t.Fatalf("big app shares %s with small apps; cost-aware should isolate it", bigHost.ID())
	}
	if bigHost.AppCount() != 1 || smallHost.AppCount() != 3 {
		t.Fatalf("placement %s=%d %s=%d, want 1 and 3",
			bigHost.ID(), bigHost.AppCount(), smallHost.ID(), smallHost.AppCount())
	}
}

// TestCostAwareEmptyHistoryBalances: without history the policy
// degrades to least-loaded behavior (no machine ends up more than one
// enclave above another).
func TestCostAwareEmptyHistoryBalances(t *testing.T) {
	dc, err := cloud.NewDataCenter("cost-dc2", sim.NewInstantLatency())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"m0", "m1", "m2"} {
		if _, err := dc.AddMachine(id); err != nil {
			t.Fatal(err)
		}
	}
	m0, _ := dc.Machine("m0")
	for i := 0; i < 6; i++ {
		if _, err := m0.LaunchApp(costImage("app-"+string(rune('a'+i))), core.NewMemoryStorage(), core.InitNew); err != nil {
			t.Fatal(err)
		}
	}
	plan := Drain("m0")
	plan.Policy = NewCostAware(nil)
	report, err := New(dc, Config{Workers: 2}).Execute(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if report.Completed != 6 {
		t.Fatalf("completed=%d, want 6", report.Completed)
	}
	m1, _ := dc.Machine("m1")
	m2, _ := dc.Machine("m2")
	if d := m1.AppCount() - m2.AppCount(); d < -1 || d > 1 {
		t.Fatalf("unbalanced placement: m1=%d m2=%d", m1.AppCount(), m2.AppCount())
	}
}

// TestCostAwareHealthRouting: the health plane's link verdicts steer
// picks — critical links are excluded (unless every candidate is
// critical), degraded links pay an 8× penalty, and healing restores the
// even split.
func TestCostAwareHealthRouting(t *testing.T) {
	dc, err := cloud.NewDataCenter("cost-dc4", sim.NewInstantLatency())
	if err != nil {
		t.Fatal(err)
	}
	ok, _ := dc.AddMachine("ok")
	bad, _ := dc.AddMachine("bad")
	candidates := []*cloud.Machine{ok, bad}

	run := func(policy *CostAware, picks int) (okN, badN int) {
		load := map[string]int{}
		for i := 0; i < picks; i++ {
			m, err := policy.Pick(nil, candidates, load)
			if err != nil {
				t.Fatal(err)
			}
			load[m.ID()]++
			if m == ok {
				okN++
			} else {
				badN++
			}
		}
		return okN, badN
	}

	// Critical excludes the candidate outright.
	policy := NewCostAware(nil)
	policy.NoteLinkState("bad", health.Critical)
	okN, badN := run(policy, 10)
	if badN != 0 {
		t.Fatalf("critical-link candidate got %d of %d picks, want 0", badN, okN+badN)
	}

	// All candidates critical: health cannot discriminate, the drain
	// still proceeds (even split, never ErrNoDestination).
	policy = NewCostAware(nil)
	policy.NoteLinkState("ok", health.Critical)
	policy.NoteLinkState("bad", health.Critical)
	okN, badN = run(policy, 10)
	if okN+badN != 10 || okN == 0 || badN == 0 {
		t.Fatalf("all-critical picks %d/%d, want an even split of 10", okN, badN)
	}

	// Degraded pays the 8× penalty: the healthy candidate absorbs most
	// picks, but the degraded one still wins once it is 8× cheaper.
	policy = NewCostAware(nil)
	policy.NoteLinkState("bad", health.Degraded)
	okN, badN = run(policy, 18)
	if okN < 14 || badN == 0 {
		t.Fatalf("degraded split %d/%d, want heavy skew to the healthy link with some spillover", okN, badN)
	}

	// Healing back to healthy clears the penalty entirely.
	policy = NewCostAware(nil)
	policy.NoteLinkState("bad", health.Degraded)
	policy.NoteLinkState("bad", health.Healthy)
	okN, badN = run(policy, 10)
	if d := okN - badN; d < -1 || d > 1 {
		t.Fatalf("post-heal split %d/%d, want even", okN, badN)
	}
}

// TestCostAwareWatchLinks: WatchLinks seeds link states from the monitor
// and tracks later transitions via the change hook — a link going down
// mid-plan redirects the remaining picks without any fleet-side polling.
func TestCostAwareWatchLinks(t *testing.T) {
	dc, err := cloud.NewDataCenter("cost-dc5", sim.NewInstantLatency())
	if err != nil {
		t.Fatal(err)
	}
	ok, _ := dc.AddMachine("ok")
	bad, _ := dc.AddMachine("bad")
	candidates := []*cloud.Machine{ok, bad}

	o := obs.NewObserver()
	mon := health.New(o, health.Config{TripAfter: 1, ClearAfter: 1}, health.NewLinkDetector())

	// The bad machine sits behind wan-x, already down at subscribe time.
	o.M().SetGauge("wan.link.down.wan-x", 1)
	o.M().Add("wan.link.msgs.wan-x", 1)
	mon.Evaluate(time.Now())

	policy := NewCostAware(nil)
	policy.WatchLinks(mon, map[string]string{"bad": "wan-x"})

	load := map[string]int{}
	for i := 0; i < 6; i++ {
		m, err := policy.Pick(nil, candidates, load)
		if err != nil {
			t.Fatal(err)
		}
		load[m.ID()]++
		if m == bad {
			t.Fatalf("pick %d chose the machine behind the down link", i)
		}
	}

	// The link heals; the change hook must clear the exclusion.
	o.M().SetGauge("wan.link.down.wan-x", 0)
	mon.Evaluate(time.Now())
	load = map[string]int{}
	okN, badN := 0, 0
	for i := 0; i < 10; i++ {
		m, err := policy.Pick(nil, candidates, load)
		if err != nil {
			t.Fatal(err)
		}
		load[m.ID()]++
		if m == bad {
			badN++
		} else {
			okN++
		}
	}
	if badN == 0 {
		t.Fatalf("healed link never picked again: %d/%d", okN, badN)
	}
}

// TestCostAwareLinkRTTWeighting: two destinations with identical load
// but links at very different RTTs — the policy must route nearly all
// picks to the fast link (bytes × RTT pricing), while with no recorded
// RTTs the same sequence splits evenly (exact pre-RTT behavior).
func TestCostAwareLinkRTTWeighting(t *testing.T) {
	dc, err := cloud.NewDataCenter("cost-dc3", sim.NewInstantLatency())
	if err != nil {
		t.Fatal(err)
	}
	near, _ := dc.AddMachine("near")
	far, _ := dc.AddMachine("far")
	candidates := []*cloud.Machine{near, far}

	// Simulate the planner's pick loop: each pick adds one planned
	// arrival to the chosen machine's load.
	run := func(policy *CostAware) (nearN, farN int) {
		load := map[string]int{}
		for i := 0; i < 20; i++ {
			m, err := policy.Pick(nil, candidates, load)
			if err != nil {
				t.Fatal(err)
			}
			load[m.ID()]++
			if m == near {
				nearN++
			} else {
				farN++
			}
		}
		return nearN, farN
	}

	weighted := NewCostAware(nil)
	weighted.SetLink("near", 1*time.Millisecond)  // metro link
	weighted.SetLink("far", 100*time.Millisecond) // intercontinental
	nearN, farN := run(weighted)
	if nearN < 18 {
		t.Fatalf("fast link got %d of 20 picks (slow got %d); RTT not priced in", nearN, farN)
	}

	// Unset RTTs: factor 1 everywhere, even split as before.
	nearN, farN = run(NewCostAware(nil))
	if d := nearN - farN; d < -1 || d > 1 {
		t.Fatalf("RTT-free split %d/%d, want even", nearN, farN)
	}
}
