package fleet

import (
	"context"
	"crypto/ed25519"
	"testing"
	"time"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/sgx"
	"repro/internal/sim"
	"repro/internal/xcrypto"
)

func costImage(name string) *sgx.Image {
	key := xcrypto.DeriveKey([]byte("costaware-test"), "signer")
	return &sgx.Image{
		Name:            name,
		Version:         1,
		Code:            []byte("cost:" + name),
		SignerPublicKey: ed25519.PublicKey(key[:]),
	}
}

// TestCostAwarePacksByMigrationCost: with history showing one app is
// vastly more expensive to move (big state, many counters), a drain
// isolates it while the cheap apps share the other destination —
// where least-loaded would split purely by count.
func TestCostAwarePacksByMigrationCost(t *testing.T) {
	dc, err := cloud.NewDataCenter("cost-dc", sim.NewInstantLatency())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"m0", "m1", "m2"} {
		if _, err := dc.AddMachine(id); err != nil {
			t.Fatal(err)
		}
	}
	m0, _ := dc.Machine("m0")
	for _, name := range []string{"big", "small-a", "small-b", "small-c"} {
		app, err := m0.LaunchApp(costImage(name), core.NewMemoryStorage(), core.InitNew)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := app.Library.CreateCounter(); err != nil {
			t.Fatal(err)
		}
	}

	// History from earlier plans: "big" moves 200 kB and 50 counters,
	// the smalls are trivial.
	hist := NewJournal()
	hist.Record(Entry{App: "big", Status: StatusCompleted, StateBytes: 200_000, Counters: 50})
	for _, name := range []string{"small-a", "small-b", "small-c"} {
		hist.Record(Entry{App: name, Status: StatusCompleted, StateBytes: 100, Counters: 1})
	}

	policy := NewCostAware(hist)
	plan := Drain("m0")
	plan.Policy = policy
	orch := New(dc, Config{Workers: 1})
	report, err := orch.Execute(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if report.Completed != 4 || report.Failed != 0 {
		t.Fatalf("completed=%d failed=%d, want 4/0", report.Completed, report.Failed)
	}

	m1, _ := dc.Machine("m1")
	m2, _ := dc.Machine("m2")
	var bigHost, smallHost *cloud.Machine
	for _, m := range []*cloud.Machine{m1, m2} {
		for _, app := range m.Apps() {
			if app.Image().Name == "big" {
				bigHost = m
			} else {
				smallHost = m
			}
		}
	}
	if bigHost == nil || smallHost == nil {
		t.Fatal("apps not placed")
	}
	if bigHost == smallHost {
		t.Fatalf("big app shares %s with small apps; cost-aware should isolate it", bigHost.ID())
	}
	if bigHost.AppCount() != 1 || smallHost.AppCount() != 3 {
		t.Fatalf("placement %s=%d %s=%d, want 1 and 3",
			bigHost.ID(), bigHost.AppCount(), smallHost.ID(), smallHost.AppCount())
	}
}

// TestCostAwareEmptyHistoryBalances: without history the policy
// degrades to least-loaded behavior (no machine ends up more than one
// enclave above another).
func TestCostAwareEmptyHistoryBalances(t *testing.T) {
	dc, err := cloud.NewDataCenter("cost-dc2", sim.NewInstantLatency())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"m0", "m1", "m2"} {
		if _, err := dc.AddMachine(id); err != nil {
			t.Fatal(err)
		}
	}
	m0, _ := dc.Machine("m0")
	for i := 0; i < 6; i++ {
		if _, err := m0.LaunchApp(costImage("app-"+string(rune('a'+i))), core.NewMemoryStorage(), core.InitNew); err != nil {
			t.Fatal(err)
		}
	}
	plan := Drain("m0")
	plan.Policy = NewCostAware(nil)
	report, err := New(dc, Config{Workers: 2}).Execute(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if report.Completed != 6 {
		t.Fatalf("completed=%d, want 6", report.Completed)
	}
	m1, _ := dc.Machine("m1")
	m2, _ := dc.Machine("m2")
	if d := m1.AppCount() - m2.AppCount(); d < -1 || d > 1 {
		t.Fatalf("unbalanced placement: m1=%d m2=%d", m1.AppCount(), m2.AppCount())
	}
}

// TestCostAwareLinkRTTWeighting: two destinations with identical load
// but links at very different RTTs — the policy must route nearly all
// picks to the fast link (bytes × RTT pricing), while with no recorded
// RTTs the same sequence splits evenly (exact pre-RTT behavior).
func TestCostAwareLinkRTTWeighting(t *testing.T) {
	dc, err := cloud.NewDataCenter("cost-dc3", sim.NewInstantLatency())
	if err != nil {
		t.Fatal(err)
	}
	near, _ := dc.AddMachine("near")
	far, _ := dc.AddMachine("far")
	candidates := []*cloud.Machine{near, far}

	// Simulate the planner's pick loop: each pick adds one planned
	// arrival to the chosen machine's load.
	run := func(policy *CostAware) (nearN, farN int) {
		load := map[string]int{}
		for i := 0; i < 20; i++ {
			m, err := policy.Pick(nil, candidates, load)
			if err != nil {
				t.Fatal(err)
			}
			load[m.ID()]++
			if m == near {
				nearN++
			} else {
				farN++
			}
		}
		return nearN, farN
	}

	weighted := NewCostAware(nil)
	weighted.SetLink("near", 1*time.Millisecond)  // metro link
	weighted.SetLink("far", 100*time.Millisecond) // intercontinental
	nearN, farN := run(weighted)
	if nearN < 18 {
		t.Fatalf("fast link got %d of 20 picks (slow got %d); RTT not priced in", nearN, farN)
	}

	// Unset RTTs: factor 1 everywhere, even split as before.
	nearN, farN = run(NewCostAware(nil))
	if d := nearN - farN; d < -1 || d > 1 {
		t.Fatalf("RTT-free split %d/%d, want even", nearN, farN)
	}
}
