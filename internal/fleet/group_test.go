package fleet

import (
	"crypto/ed25519"
	"fmt"
	"testing"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/sgx"
	"repro/internal/sim"
	"repro/internal/xcrypto"
)

func groupTestImage(name string) *sgx.Image {
	key := xcrypto.DeriveKey([]byte("group-test"), "signer")
	return &sgx.Image{Name: name, Version: 1, Code: []byte(name), SignerPublicKey: ed25519.PublicKey(key[:])}
}

// TestGroupAssignments checks the batching grouper directly: grouping by
// (source, destination), the batch-size cap, singleton fallbacks for
// recoveries and token-resumed members, and the one-identity-per-batch
// rule.
func TestGroupAssignments(t *testing.T) {
	dc, err := cloud.NewDataCenter("dc", sim.NewInstantLatency())
	if err != nil {
		t.Fatal(err)
	}
	a, _ := dc.AddMachine("A")
	b, _ := dc.AddMachine("B")
	c, _ := dc.AddMachine("C")

	launch := func(m *cloud.Machine, name string) *cloud.App {
		app, err := m.LaunchApp(groupTestImage(name), core.NewMemoryStorage(), core.InitNew)
		if err != nil {
			t.Fatalf("launch %s: %v", name, err)
		}
		return app
	}

	var as []Assignment
	// Five distinct apps A→B: should pack into groups of ≤3.
	for i := 0; i < 5; i++ {
		as = append(as, Assignment{App: launch(a, fmt.Sprintf("ab-%d", i)), Source: a, Dest: b})
	}
	// Two apps A→C: separate group key.
	for i := 0; i < 2; i++ {
		as = append(as, Assignment{App: launch(a, fmt.Sprintf("ac-%d", i)), Source: a, Dest: c})
	}
	// A recovery must stay a singleton.
	as = append(as, Assignment{App: launch(a, "rec"), Source: a, Dest: b, Recover: true})
	// Two same-identity apps A→B must land in different batches.
	twin1 := launch(a, "twin")
	twin2 := launch(a, "twin")
	as = append(as, Assignment{App: twin1, Source: a, Dest: b}, Assignment{App: twin2, Source: a, Dest: b})

	groups := groupAssignments(as, 3)

	total := 0
	for _, g := range groups {
		total += len(g)
		if len(g) > 3 {
			t.Fatalf("group of %d exceeds batch size 3", len(g))
		}
		seen := make(map[[32]byte]bool)
		for _, m := range g {
			if m.Recover && len(g) != 1 {
				t.Fatal("recovery grouped with migrations")
			}
			mre := m.App.Image().Measure()
			if seen[mre] {
				t.Fatal("two same-identity members share a batch")
			}
			seen[mre] = true
			if m.Source != g[0].Source || m.Dest != g[0].Dest {
				t.Fatal("group mixes (source, dest) pairs")
			}
		}
	}
	if total != len(as) {
		t.Fatalf("grouper lost members: %d in, %d out", len(as), total)
	}

	// BatchSize 1 degenerates to all singletons.
	for _, g := range groupAssignments(as, 1) {
		if len(g) != 1 {
			t.Fatalf("batchSize 1 produced group of %d", len(g))
		}
	}
}
