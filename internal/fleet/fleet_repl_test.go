package fleet_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/cloud"
	"repro/internal/fleet"
	"repro/internal/sim"
)

func newReplDC(t *testing.T, ids ...string) *cloud.DataCenter {
	t.Helper()
	dc, err := cloud.NewDataCenter("repl-dc", sim.NewInstantLatency())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if _, err := dc.AddMachine(id); err != nil {
			t.Fatal(err)
		}
	}
	return dc
}

func TestJournalSnapshotRoundTrip(t *testing.T) {
	j := fleet.NewJournal()
	j.Record(fleet.Entry{
		App: "app-007", Source: "m1", PlannedDest: "m2", Dest: "m3",
		Attempts: 3, Redirects: 1, StateBytes: 1381,
		Latency: 42 * time.Millisecond, SourceFrozen: true, DoneConfirmed: true,
		Status: fleet.StatusCompleted,
	})
	j.Record(fleet.Entry{
		App: "app-008", Source: "m1", PlannedDest: "m2", Dest: "m2",
		Attempts: 4, Status: fleet.StatusFailed, SourceFrozen: true,
		Err: "fleet: delivery attempts exhausted",
	})
	j.Record(fleet.Entry{App: "app-009", Source: "m1", PlannedDest: "m2", Status: fleet.StatusCanceled})

	raw, err := j.Encode()
	if err != nil {
		t.Fatal(err)
	}
	j2, err := fleet.DecodeJournal(raw)
	if err != nil {
		t.Fatal(err)
	}
	a, b := j.Entries(), j2.Entries()
	if len(a) != len(b) {
		t.Fatalf("entry count: %d != %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("entry %d mismatch:\n%+v\n%+v", i, a[i], b[i])
		}
	}
	// Stale or foreign bytes are rejected cleanly.
	if _, err := fleet.DecodeJournal(raw[:len(raw)-1]); !errors.Is(err, fleet.ErrJournalFormat) {
		t.Fatalf("truncated snapshot: err = %v", err)
	}
	raw[0] = 0xA1
	if _, err := fleet.DecodeJournal(raw); !errors.Is(err, fleet.ErrJournalFormat) {
		t.Fatalf("wrong tag: err = %v", err)
	}
}

// TestJournalSnapshotResume is the orchestrator-resilience scenario the
// snapshot codec exists for: a drain fails (its only target is dead),
// the journal is persisted, the orchestrator is thrown away, and a new
// one — knowing nothing but the decoded snapshot — finishes exactly the
// recorded failures through the parked-migration tokens.
func TestJournalSnapshotResume(t *testing.T) {
	dc := newReplDC(t, "A", "B", "C")
	states := launchApps(t, mustMachine(t, dc, "A"), 8)
	mustMachine(t, dc, "C").Kill()

	orch := fleet.New(dc, fleet.Config{Workers: 4, MaxAttempts: 2, RetryBackoff: time.Millisecond})
	report, err := orch.Execute(context.Background(),
		fleet.Plan{Intent: fleet.IntentDrain, Sources: []string{"A"}, Targets: []string{"C"}})
	if err != nil {
		t.Fatal(err)
	}
	if report.Failed != 8 || report.Completed != 0 {
		t.Fatalf("setup drain: %d failed, %d completed", report.Failed, report.Completed)
	}

	// Persist the journal; the first orchestrator is gone after this.
	raw, err := report.Journal.Encode()
	if err != nil {
		t.Fatal(err)
	}
	snapshot, err := fleet.DecodeJournal(raw)
	if err != nil {
		t.Fatal(err)
	}
	failed := snapshot.ByStatus(fleet.StatusFailed)
	if len(failed) != 8 {
		t.Fatalf("snapshot records %d failures", len(failed))
	}

	// Resume: re-plan the recorded failures onto a live machine. The
	// compiled drain picks up the frozen apps; the snapshot tells the new
	// orchestrator which ones are unfinished business.
	resume := fleet.Plan{Intent: fleet.IntentDrain, Sources: []string{"A"}, Targets: []string{"B"}}
	assignments, err := resume.Compile(dc)
	if err != nil {
		t.Fatal(err)
	}
	unfinished := make(map[string]bool, len(failed))
	for _, e := range failed {
		unfinished[e.App] = true
	}
	var todo []fleet.Assignment
	for _, as := range assignments {
		if unfinished[as.App.Image().Name] {
			todo = append(todo, as)
		}
	}
	if len(todo) != 8 {
		t.Fatalf("resume plan covers %d of 8 failures", len(todo))
	}
	orch2 := fleet.New(dc, fleet.Config{Workers: 4})
	report2, err := orch2.Run(context.Background(), resume, todo)
	if err != nil {
		t.Fatal(err)
	}
	if report2.Completed != 8 {
		t.Fatalf("resumed drain completed %d of 8: %s", report2.Completed, report2)
	}
	verifySurvival(t, states, []*cloud.Machine{mustMachine(t, dc, "B")})
}

// TestEvacuateHandsOffReplicaRole drains a machine that hosts a counter
// replica: the role must move to a target before the enclaves do, the
// group must stay at full strength, and the replicated counters must
// keep working across the evacuation — including after the drained
// machine is killed for maintenance.
func TestEvacuateHandsOffReplicaRole(t *testing.T) {
	dc := newReplDC(t, "A", "B", "C", "D", "E")
	group, err := dc.NewReplicaGroup("rack-1", 1, "A", "B", "C")
	if err != nil {
		t.Fatal(err)
	}
	a := mustMachine(t, dc, "A")
	states := launchApps(t, a, 6)

	var mu sync.Mutex
	var handoffEvents []fleet.Event
	orch := fleet.New(dc, fleet.Config{Workers: 4, OnEvent: func(e fleet.Event) {
		if e.Type == fleet.EventReplicaHandoff {
			mu.Lock()
			handoffEvents = append(handoffEvents, e)
			mu.Unlock()
		}
	}})
	report, err := orch.Execute(context.Background(), fleet.Evacuate([]string{"A"}, []string{"D", "E"}))
	if err != nil {
		t.Fatal(err)
	}
	if report.Completed != 6 || report.Failed != 0 {
		t.Fatalf("evacuate: %s", report)
	}
	if report.ReplicaHandoffs != 1 {
		t.Fatalf("replica handoffs = %d, want 1", report.ReplicaHandoffs)
	}
	if len(handoffEvents) != 1 || handoffEvents[0].Source != "A" {
		t.Fatalf("handoff events = %+v", handoffEvents)
	}
	if a.HostsReplica() {
		t.Fatal("drained machine still hosts its replica")
	}
	newHost := handoffEvents[0].Dest
	m, _ := dc.Machine(newHost)
	if m == nil || !m.HostsReplica() {
		t.Fatalf("replica role did not land on %s", newHost)
	}
	members := group.Members()
	if len(members) != 3 {
		t.Fatalf("group size after handoff = %d", len(members))
	}

	// The drained machine can now be pulled entirely; quorum-backed
	// counters keep serving the evacuated apps.
	a.Kill()
	verifySurvival(t, states, []*cloud.Machine{mustMachine(t, dc, "D"), mustMachine(t, dc, "E")})

	// A plan with no eligible taker is refused before anything moves.
	if _, err := orch.Execute(context.Background(), fleet.Evacuate([]string{"B"}, []string{newHost})); !errors.Is(err, fleet.ErrNoReplicaTarget) {
		t.Fatalf("evacuate without replica taker: err = %v", err)
	}
}

func mustMachine(t *testing.T, dc *cloud.DataCenter, id string) *cloud.Machine {
	t.Helper()
	m, ok := dc.Machine(id)
	if !ok {
		t.Fatalf("machine %s missing", id)
	}
	return m
}
