package fleet

import (
	"sync"
	"time"

	"repro/internal/stats"
)

// Status is the terminal state of one journaled migration.
type Status int

// Migration outcomes.
const (
	// StatusCompleted: the enclave's persistent state was restored on the
	// destination and the source library verified frozen.
	StatusCompleted Status = iota + 1
	// StatusFailed: the migration could not complete within its attempt
	// budget. The source library stays frozen and the migration data is
	// held at the source Migration Enclave, so no state is lost and no
	// fork window opens; the operator can redirect it later.
	StatusFailed
	// StatusCanceled: the context was canceled before the migration
	// completed (it may not have started).
	StatusCanceled
)

// String names the status.
func (s Status) String() string {
	switch s {
	case StatusCompleted:
		return "completed"
	case StatusFailed:
		return "failed"
	case StatusCanceled:
		return "canceled"
	default:
		return "unknown"
	}
}

// Entry records the outcome of one migration.
type Entry struct {
	// App is the enclave image name.
	App string
	// Source and Dest are machine IDs; Dest is where the enclave actually
	// landed, PlannedDest where the plan originally put it.
	Source, PlannedDest, Dest string
	// Attempts counts delivery attempts this plan performed (1 = first
	// try succeeded; 0 = a resumed migration whose data was already
	// delivered or restored by an earlier plan — no delivery happened
	// here).
	Attempts int
	// Redirects counts destination changes after delivery failures.
	Redirects int
	// StateBytes is the canonical encoded size of the migrated
	// persistent-state payload (Table I: counter table + MSK), a stable
	// near-upper bound on the wire payload (whose exact size varies with
	// the digits of the secret values).
	StateBytes int
	// Counters is the enclave's active counter count at migration (or
	// recovery) time — with StateBytes, the per-app history cost-aware
	// placement packs destinations by.
	Counters int
	// Link names the federation WAN link the migration traversed to
	// reach its destination (empty for intra-DC migrations).
	Link string
	// Latency is the end-to-end migration time, freeze through restore,
	// as performed by this plan (a resumed entry with Attempts == 0
	// records only its bookkeeping time).
	Latency time.Duration
	// SourceFrozen records the post-transfer verification that the source
	// library refuses to operate (the fork-freedom invariant).
	SourceFrozen bool
	// DoneConfirmed records whether the source ME received the DONE
	// confirmation from the destination (Fig. 2's final arrow).
	DoneConfirmed bool
	// Recovered marks an escrow-based resurrection (recovery mode): the
	// enclave was re-instantiated from the rack escrow because its source
	// machine was gone, not migrated from a live source.
	Recovered bool
	Status    Status
	// Err is the final error for failed or canceled migrations.
	Err string
}

// Journal accumulates per-migration outcomes. Safe for concurrent use.
type Journal struct {
	mu      sync.Mutex
	entries []Entry
}

// NewJournal creates an empty journal.
func NewJournal() *Journal { return &Journal{} }

// Record appends one outcome.
func (j *Journal) Record(e Entry) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.entries = append(j.entries, e)
}

// Entries returns a copy of all recorded outcomes.
func (j *Journal) Entries() []Entry {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]Entry(nil), j.entries...)
}

// Count returns the number of entries with the given status.
func (j *Journal) Count(st Status) int {
	j.mu.Lock()
	defer j.mu.Unlock()
	n := 0
	for _, e := range j.entries {
		if e.Status == st {
			n++
		}
	}
	return n
}

// Len returns the total number of entries.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.entries)
}

// LatencySummary summarizes completed-migration latencies in
// milliseconds as mean ± CI half-width at the given confidence level,
// using the same statistics machinery as the paper's figures. Resumed
// migrations found already completed (Attempts == 0, no delivery work
// performed) are excluded so they do not skew the figure.
func (j *Journal) LatencySummary(conf float64) (stats.Summary, error) {
	j.mu.Lock()
	var ms []float64
	for _, e := range j.entries {
		if e.Status == StatusCompleted && e.Attempts > 0 {
			ms = append(ms, float64(e.Latency)/float64(time.Millisecond))
		}
	}
	j.mu.Unlock()
	return stats.Summarize(ms, conf)
}

// TotalAttempts sums delivery attempts across all entries.
func (j *Journal) TotalAttempts() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	n := 0
	for _, e := range j.entries {
		n += e.Attempts
	}
	return n
}

// TotalStateBytes sums the migrated persistent-state payload sizes of
// completed migrations.
func (j *Journal) TotalStateBytes() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	var n int64
	for _, e := range j.entries {
		if e.Status == StatusCompleted {
			n += int64(e.StateBytes)
		}
	}
	return n
}
