package fleet

import (
	"sync"
	"time"

	"repro/internal/cloud"
	"repro/internal/obs/health"
)

// counterCostBytes is the byte-equivalent weight of one migratable
// counter in the cost model. Destroy-and-recreate of a counter is a
// firmware transaction pair (hundreds of milliseconds at paper-scale
// latencies), which dwarfs shipping a few kilobytes of state — so a
// counter-heavy enclave must look expensive even when its Table I
// payload is small.
const counterCostBytes = 64 << 10

// degradedLinkPenalty multiplies the projected cost of a candidate whose
// WAN link the health plane reports degraded: the destination stays
// reachable (unlike critical, which is excluded outright), but only wins
// a pick when it is 8× cheaper than the healthiest alternative — roughly
// the cost gap at which eating a lossy link's retries still beats
// queueing behind a clean one.
const degradedLinkPenalty = 8

// appCost aggregates a journal's observations of one app.
type appCost struct {
	bytes    int64
	counters int64
	n        int64
}

// estimate is the expected migration cost in byte-equivalents.
func (c appCost) estimate() int64 {
	if c.n == 0 {
		return 0
	}
	return c.bytes/c.n + (c.counters/c.n)*counterCostBytes
}

// CostAware places each enclave on the destination with the lowest
// projected migration cost rather than the lowest enclave count: the
// per-app state size (Table I bytes) and counter count observed in
// earlier plans' journals feed an expected cost per app, destinations
// accumulate the cost of what this policy has already assigned them,
// and every pick takes the cheapest. Enclave counts still matter for
// apps the history has never seen (they are charged the historical
// average), so an empty history degrades to least-loaded behavior.
//
// Feed it the previous plan's journal (or a merged history) and reuse
// one instance per plan: the assigned-cost tally accumulates across
// picks of one planning session. Safe for concurrent use (the
// orchestrator also consults policies from worker goroutines when
// re-targeting).
type CostAware struct {
	mu       sync.Mutex
	hist     map[string]appCost
	total    appCost
	assigned map[string]int64
	linkRTT  map[string]time.Duration
	linkHlth map[string]health.State
}

// NewCostAware builds the policy from journaled history. A nil journal
// yields an empty history (pure least-loaded-by-average behavior).
func NewCostAware(history *Journal) *CostAware {
	c := &CostAware{
		hist:     make(map[string]appCost),
		assigned: make(map[string]int64),
		linkRTT:  make(map[string]time.Duration),
		linkHlth: make(map[string]health.State),
	}
	if history != nil {
		for _, e := range history.Entries() {
			if e.Status != StatusCompleted {
				continue
			}
			h := c.hist[e.App]
			h.bytes += int64(e.StateBytes)
			h.counters += int64(e.Counters)
			h.n++
			c.hist[e.App] = h
			c.total.bytes += int64(e.StateBytes)
			c.total.counters += int64(e.Counters)
			c.total.n++
		}
	}
	return c
}

// Name identifies the policy.
func (*CostAware) Name() string { return "cost-aware" }

// Observe folds one more journal into the history (e.g. after each
// plan, so the next plan packs with fresher costs).
func (c *CostAware) Observe(j *Journal) {
	if j == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range j.Entries() {
		if e.Status != StatusCompleted {
			continue
		}
		h := c.hist[e.App]
		h.bytes += int64(e.StateBytes)
		h.counters += int64(e.Counters)
		h.n++
		c.hist[e.App] = h
		c.total.bytes += int64(e.StateBytes)
		c.total.counters += int64(e.Counters)
		c.total.n++
	}
}

// SetLink records the round-trip time of the network path to one
// destination machine (e.g. the WAN link's configured RTT, or a
// measured median). Picks then price a candidate's projected byte cost
// by that RTT — moving a megabyte across a 200ms intercontinental link
// really is ~200× the transfer time of the same megabyte at 1ms — so a
// WAN-reachable destination wins only when it is byte-cheaper by more
// than the link is slower. Machines with no recorded link keep factor 1
// (LAN), which makes an RTT-free history behave exactly as before.
func (c *CostAware) SetLink(machineID string, rtt time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.linkRTT[machineID] = rtt
}

// NoteLinkState records the health plane's verdict on the path to one
// destination machine. Degraded paths are penalized (see
// degradedLinkPenalty); critical paths are excluded from picks entirely
// unless every candidate is critical (a drain must still go somewhere).
func (c *CostAware) NoteLinkState(machineID string, st health.State) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if st == health.Healthy {
		delete(c.linkHlth, machineID)
		return
	}
	c.linkHlth[machineID] = st
}

// WatchLinks subscribes the policy to a health monitor. linkOf maps each
// destination machine ID to the name of the WAN link it sits behind (the
// same names the fleet passes as BatchOpts.Link). Current link states are
// applied immediately; later transitions arrive via the monitor's change
// hook, so a link going critical mid-plan redirects the remaining picks.
func (c *CostAware) WatchLinks(mon *health.Monitor, linkOf map[string]string) {
	if mon == nil || len(linkOf) == 0 {
		return
	}
	for machine, link := range linkOf {
		c.NoteLinkState(machine, mon.StateOf("link", link))
	}
	frozen := make(map[string]string, len(linkOf))
	for m, l := range linkOf {
		frozen[m] = l
	}
	mon.OnChange(func(ch health.Change) {
		if ch.Entity.Kind != "link" {
			return
		}
		for machine, link := range frozen {
			if link == ch.Entity.Name {
				c.NoteLinkState(machine, ch.To)
			}
		}
	})
}

// rttFactor is the per-candidate cost multiplier: RTT in whole
// milliseconds, floored at 1 so LAN-class and unrecorded links are
// priced identically.
func (c *CostAware) rttFactor(machineID string) int64 {
	f := int64(c.linkRTT[machineID] / time.Millisecond)
	if f < 1 {
		return 1
	}
	return f
}

// cost estimates one app's migration cost: its own history, else the
// fleet-wide average, else a nominal unit so picks stay balanced.
func (c *CostAware) cost(name string) int64 {
	if h, ok := c.hist[name]; ok && h.n > 0 {
		return h.estimate()
	}
	if avg := c.total.estimate(); avg > 0 {
		return avg
	}
	return counterCostBytes
}

// Pick implements Policy. app is nil for escrow-based resurrections;
// they are charged the historical average.
func (c *CostAware) Pick(app *cloud.App, candidates []*cloud.Machine, load map[string]int) (*cloud.Machine, error) {
	if len(candidates) == 0 {
		return nil, ErrNoDestination
	}
	name := ""
	if app != nil {
		name = app.Image().Name
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	cost := c.cost(name)
	avg := c.total.estimate()
	if avg <= 0 {
		avg = counterCostBytes
	}
	// A candidate behind a critical link is excluded — unless every
	// candidate is, in which case health cannot discriminate and the
	// plan proceeds on cost alone rather than failing the drain.
	allCritical := true
	for _, cand := range candidates {
		if c.linkHlth[cand.ID()] != health.Critical {
			allCritical = false
			break
		}
	}
	var best *cloud.Machine
	var bestScore int64
	for _, cand := range candidates {
		if !allCritical && c.linkHlth[cand.ID()] == health.Critical {
			continue
		}
		// Projected cost = the load map's enclaves (standing + planned
		// arrivals, which the planner counts at one each) priced at the
		// historical average, plus this session's accumulated deviation
		// from that average. Pricing only the deviation here avoids
		// double-counting the planner's own load increments — and makes
		// an empty history collapse exactly to least-loaded.
		// The RTT factor scales the whole projected byte cost: bytes × RTT
		// is transfer time, the quantity a drain deadline actually spends.
		score := (c.assigned[cand.ID()] + int64(load[cand.ID()])*avg) * c.rttFactor(cand.ID())
		if c.linkHlth[cand.ID()] == health.Degraded {
			score *= degradedLinkPenalty
		}
		if best == nil || score < bestScore ||
			(score == bestScore && cand.ID() < best.ID()) {
			best, bestScore = cand, score
		}
	}
	c.assigned[best.ID()] += cost - avg
	return best, nil
}
