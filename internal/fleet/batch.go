package fleet

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/obs"
)

// Batched execution (Config.BatchSize > 1): migrations sharing a
// (source, destination) pair ride one core batch stream. Each member is
// frozen by a pool worker immediately before its envelope enters the
// stream and restored by another pool worker the moment its delivery
// ack lands — so batching amortizes the handshake and the exchange
// count without ever serializing the members' freeze windows.

// groupAssignments splits the compiled assignments into worker groups.
// Recoveries, image-less entries, and token-resumed migrations always
// run the classic single path; the rest group by (source, destination)
// into batches of up to batchSize with at most one member per enclave
// identity per batch (the destination ME stores one pending envelope
// per MRENCLAVE, so same-identity members must not share a stream).
func groupAssignments(assignments []Assignment, batchSize int) [][]Assignment {
	out := make([][]Assignment, 0, len(assignments))
	if batchSize <= 1 {
		for _, as := range assignments {
			out = append(out, []Assignment{as})
		}
		return out
	}
	type gkey struct{ src, dst string }
	open := make(map[gkey][]int) // open group indices into out
	for _, as := range assignments {
		if as.Recover || as.App == nil || as.App.Library.MigrationToken() != nil {
			out = append(out, []Assignment{as})
			continue
		}
		k := gkey{as.Source.ID(), as.Dest.ID()}
		mre := as.App.Image().Measure()
		placed := false
		for _, gi := range open[k] {
			g := out[gi]
			if len(g) >= batchSize {
				continue
			}
			dup := false
			for _, other := range g {
				if other.App.Image().Measure() == mre {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			out[gi] = append(g, as)
			placed = true
			break
		}
		if !placed {
			open[k] = append(open[k], len(out))
			out = append(out, []Assignment{as})
		}
	}
	return out
}

// batchMember is one migration's progress through a batched attempt.
type batchMember struct {
	as    Assignment
	entry Entry
	sp    *obs.Span
	tc    obs.TraceContext
	start time.Time

	token    []byte // done-token once frozen+held
	restored bool   // LaunchApp(InitMigrated) succeeded this attempt
	terminal bool   // entry finalized
	retryErr error  // last retryable failure this attempt
}

// migrateBatch runs one group end to end with retry, backoff, and
// redirect-on-dead-destination, mirroring migrateOne's fork-freedom
// rules member by member: freeze before any data leaves, redirect only
// off a dead destination ME, never re-send after a restore failed on a
// live destination. A mid-stream failure parks exactly the members no
// ack covered — frozen, held at the source ME, resumable by token.
func (o *Orchestrator) migrateBatch(ctx context.Context, group []Assignment, targets []*cloud.Machine, policy Policy, links map[*cloud.Machine]string) []Entry {
	src, dest := group[0].Source, group[0].Dest
	members := make([]*batchMember, len(group))
	for i, as := range group {
		m := &batchMember{as: as, start: time.Now()}
		m.entry = Entry{
			App:         as.App.Image().Name,
			Source:      src.ID(),
			PlannedDest: dest.ID(),
			StateBytes:  stateBytes(as.App),
			Counters:    as.App.Library.ActiveCounters(),
			Link:        links[dest],
		}
		sp, tc := o.cfg.Obs.StartSpan("fleet.migrate", obs.TraceContext{})
		if sp != nil {
			sp.Site = m.entry.App
		}
		m.sp, m.tc = sp, tc
		o.emit(Event{Type: EventStart, App: m.entry.App, Source: src.ID(), Dest: dest.ID(), Link: links[dest]})
		members[i] = m
	}

	finish := func(m *batchMember, st Status, err error) {
		if m.terminal {
			return
		}
		m.terminal = true
		m.entry.Status = st
		m.entry.Dest = dest.ID()
		m.entry.Link = links[dest]
		m.entry.Latency = time.Since(m.start)
		m.entry.SourceFrozen = m.as.App.Library.Frozen()
		if err != nil {
			m.entry.Err = err.Error()
		}
		m.sp.End()
		if st == StatusCompleted && m.entry.Attempts > 0 {
			o.cfg.Obs.M().Histogram("fleet.migration.latency").Observe(m.entry.Latency)
		}
		o.cfg.Obs.M().Add("fleet.migration."+st.String(), 1)
		evType := EventFailed
		switch st {
		case StatusCompleted:
			evType = EventCompleted
		case StatusCanceled:
			evType = EventCanceled
		}
		o.emit(Event{Type: evType, App: m.entry.App, Source: src.ID(), Dest: dest.ID(), Attempt: m.entry.Attempts, Link: links[dest], Err: err})
	}
	complete := func(m *batchMember) {
		lib := m.as.App.Library
		if !lib.Frozen() {
			finish(m, StatusFailed, ErrSourceNotFrozen)
			return
		}
		done, derr := lib.MigrationComplete()
		m.entry.DoneConfirmed = derr == nil && done
		m.as.App.Terminate()
		finish(m, StatusCompleted, nil)
	}
	completedElsewhere := func(m *batchMember) {
		m.entry.DoneConfirmed = true
		m.as.App.Terminate()
		finish(m, StatusCompleted, nil)
	}
	entries := func() []Entry {
		out := make([]Entry, len(members))
		for i, m := range members {
			out[i] = m.entry
		}
		return out
	}

	var lastErr error
	for attempt := 1; attempt <= o.cfg.MaxAttempts; attempt++ {
		var rem []*batchMember
		for _, m := range members {
			if !m.terminal {
				rem = append(rem, m)
			}
		}
		if len(rem) == 0 {
			return entries()
		}
		for _, m := range rem {
			m.entry.Attempts = attempt
			m.restored = false
			m.retryErr = nil
		}
		if attempt > 1 {
			if err := o.backoff(ctx, attempt, links[dest] != ""); err != nil {
				for _, m := range rem {
					finish(m, StatusCanceled, err)
				}
				return entries()
			}
			// Redirect the whole remainder only off a dead destination ME
			// (same fork-safety rule as migrateOne: a live destination may
			// hold deliverable copies).
			if !dest.ME.Enclave().Alive() {
				if alt := o.pickAlternate(rem[0].as.App, dest, src, targets, policy); alt != nil {
					for _, m := range rem {
						m.entry.Redirects++
						o.emit(Event{Type: EventRedirect, App: m.entry.App, Source: src.ID(), Dest: alt.ID(), Attempt: attempt, Link: links[alt]})
					}
					dest = alt
				}
			}
		}

		release, cerr := o.acquireLink(ctx, links[dest])
		if cerr != nil {
			for _, m := range rem {
				finish(m, StatusCanceled, cerr)
			}
			return entries()
		}
		// Hold every member's (destination, identity) delivery slot for
		// the whole attempt, acquired in MRENCLAVE order so concurrent
		// batches to one destination cannot deadlock (singletons hold at
		// most one slot and cannot close a cycle).
		sort.Slice(rem, func(i, j int) bool {
			a, b := rem[i].as.App.Image().Measure(), rem[j].as.App.Image().Measure()
			return bytes.Compare(a[:], b[:]) < 0
		})
		unlocks := make([]func(), 0, len(rem))
		for _, m := range rem {
			unlocks = append(unlocks, o.locks.lock(dest.ID(), m.as.App.Image().Measure()))
		}
		unlockAll := func() {
			for i := len(unlocks) - 1; i >= 0; i-- {
				unlocks[i]()
			}
			release()
		}

		bs, err := src.ME.BeginBatch(dest.MEAddress(), len(rem), core.BatchOpts{
			Window:     o.cfg.BatchWindow,
			ChunkBytes: o.cfg.BatchChunkBytes,
			Compress:   links[dest] != "",
			Link:       links[dest],
		})
		if err != nil {
			unlockAll()
			lastErr = err
			for _, m := range rem {
				o.emit(Event{Type: EventRetry, App: m.entry.App, Source: src.ID(), Dest: dest.ID(), Attempt: attempt, Err: err})
			}
			continue
		}

		workers := min(o.cfg.Workers, len(rem))
		// Restore pool: resume each member at the destination the moment
		// its own delivery ack lands — not when the batch ends.
		var restoreWg sync.WaitGroup
		for w := 0; w < workers; w++ {
			restoreWg.Add(1)
			go func() {
				defer restoreWg.Done()
				for idx := range bs.Delivered() {
					if int(idx) >= len(rem) {
						continue
					}
					m := rem[idx]
					o.emit(Event{Type: EventDelivered, App: m.entry.App, Source: src.ID(), Dest: dest.ID(), Attempt: attempt})
					_, lerr := dest.LaunchApp(m.as.App.Image(), core.NewMemoryStorage(), core.InitMigrated)
					if lerr == nil {
						m.restored = true
						continue
					}
					if dest.ME.Enclave().Alive() {
						if done, derr := m.as.App.Library.MigrationComplete(); derr == nil && done {
							completedElsewhere(m)
							continue
						}
						finish(m, StatusFailed, fmt.Errorf("%w: %v", ErrRestoreOnLiveDestination, lerr))
						continue
					}
					// The destination died after storing the data: its copy
					// died with the ME's memory, so a re-send cannot fork.
					m.retryErr = lerr
				}
			}()
		}
		// Freeze pool: each member freezes (or re-enters by token) right
		// before its envelope joins the stream, keeping freeze windows
		// per-enclave regardless of batch size.
		var freezeWg sync.WaitGroup
		jobs := make(chan int)
		for w := 0; w < workers; w++ {
			freezeWg.Add(1)
			go func() {
				defer freezeWg.Done()
				for i := range jobs {
					m := rem[i]
					lib := m.as.App.Library
					if m.token == nil {
						if ferr := lib.StartMigrationHeldCtx(m.tc, dest.MEAddress()); ferr != nil {
							// Freeze/export failure before any data left the
							// machine: terminal, like StartMigration failing.
							finish(m, StatusFailed, ferr)
							continue
						}
						m.token = lib.MigrationToken()
					}
					if aerr := bs.Add(uint32(i), m.token); aerr != nil {
						if errors.Is(aerr, core.ErrMigrationDone) {
							completedElsewhere(m)
							continue
						}
						// Stream already failed (or closed): the member stays
						// frozen and held; the next attempt re-streams it.
						m.retryErr = aerr
					}
				}
			}()
		}
		for i := range rem {
			jobs <- i
		}
		close(jobs)
		freezeWg.Wait()
		statuses, serr := bs.Finish()
		restoreWg.Wait()

		// Flush the destination's queued DONE confirmations back to the
		// source so MigrationComplete verifies below. Best-effort: a lost
		// flush leaves DoneConfirmed=false, never an unsafe state.
		anyRestored := false
		for _, m := range rem {
			if m.restored {
				anyRestored = true
				break
			}
		}
		if anyRestored {
			_ = dest.ME.FlushDones(src.ME.Address())
		}
		unlockAll()
		if serr != nil {
			lastErr = serr
		}

		for i, m := range rem {
			if m.terminal {
				continue
			}
			if m.restored {
				complete(m)
				continue
			}
			st, acked := statuses[uint32(i)]
			switch {
			case acked && !st.OK:
				derr := errors.New(st.Detail)
				switch {
				case isAlreadyPending(derr):
					// A same-identity envelope (from outside this batch)
					// occupies the destination slot. Park: the data stays
					// frozen and held at the source, resumable by token.
					finish(m, StatusFailed, ErrIdentityBusy)
				case isEnvelopeConsumed(derr):
					if done, cerr := m.as.App.Library.MigrationComplete(); cerr == nil && done {
						completedElsewhere(m)
					} else {
						finish(m, StatusFailed, fmt.Errorf("fleet: envelope consumed at %s without restore confirmation; not re-sending: %v", dest.ID(), derr))
					}
				default:
					m.retryErr = derr
				}
			case acked && st.OK && m.retryErr == nil:
				// Stored but the delivery signal was lost before a restore
				// ran (e.g. the stream failed right after the ack). The
				// envelope sits deliverable at the destination; re-sending
				// the same token is idempotent there, so retry.
				m.retryErr = fmt.Errorf("fleet: member delivered but not restored")
			}
			if !m.terminal {
				err := m.retryErr
				if err == nil {
					// Never covered by an ack: parked at the source.
					err = serr
					if err == nil {
						err = fmt.Errorf("fleet: batch member not acknowledged")
					}
				}
				lastErr = err
				o.emit(Event{Type: EventRetry, App: m.entry.App, Source: src.ID(), Dest: dest.ID(), Attempt: attempt, Err: err})
			}
		}
	}
	exhausted := fmt.Errorf("%w after %d attempts: %v", ErrAttemptsExhausted, o.cfg.MaxAttempts, lastErr)
	for _, m := range members {
		if !m.terminal {
			finish(m, StatusFailed, exhausted)
		}
	}
	return entries()
}
