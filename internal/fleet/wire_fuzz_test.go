package fleet

import (
	"bytes"
	"testing"
	"time"
)

// Fuzz harness for the journal snapshot decoder (same invariant as the
// internal/core codec harnesses: error or a consistent value, never a
// panic). Seed corpora live in testdata/fuzz/FuzzDecodeJournal/.

func FuzzDecodeJournal(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0xD1})
	f.Add([]byte{0xD1, 0x01})
	f.Add([]byte{0xD1, 0x01, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	j := NewJournal()
	j.Record(Entry{
		App: "app-1", Source: "m1", PlannedDest: "m2", Dest: "m3",
		Attempts: 2, Redirects: 1, StateBytes: 1381,
		Latency: 17 * time.Millisecond, SourceFrozen: true, DoneConfirmed: true,
		Status: StatusCompleted,
	})
	j.Record(Entry{App: "app-2", Source: "m1", PlannedDest: "m2", Status: StatusFailed, Err: "boom"})
	if raw, err := j.Encode(); err == nil {
		f.Add(raw)
	}
	f.Fuzz(func(t *testing.T, raw []byte) {
		j, err := DecodeJournal(raw)
		if err != nil {
			return
		}
		re, err := j.Encode()
		if err != nil {
			t.Fatalf("decoded journal does not re-encode: %v", err)
		}
		if !bytes.Equal(raw, re) {
			t.Fatal("canonical re-encoding differs from accepted input")
		}
	})
}
