// Package fleet orchestrates enclave migrations at datacenter scale: it
// turns operator intents (drain a machine for maintenance, rebalance load
// evenly, evacuate a set of machines) into concrete per-enclave migration
// assignments and executes them through a bounded worker pool with
// per-migration retry, redirect-on-failure, and a journal of outcomes.
//
// The paper (§I, §V-D) motivates enclave migration with exactly these
// cloud operations but specifies only the single-enclave protocol; fleet
// is the management layer above it. Every migration still runs the full
// Fig. 2 protocol through internal/core — fleet adds no trust: it is the
// (untrusted) cloud management plane. Freeze and destroy-before-export
// hold regardless of what the orchestrator does; single delivery
// additionally relies on the §V-D rule that a delivered-but-unconfirmed
// migration is only re-targeted once its previous destination machine is
// gone — the rule this executor implements (redirect only to replace a
// dead destination ME; a restore failure on a live one is reported, not
// re-sent).
package fleet

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/cloud"
)

// Planning errors.
var (
	ErrUnknownMachine = errors.New("fleet: unknown machine in plan")
	ErrNoDestination  = errors.New("fleet: no destination machine available")
	ErrEmptyPlan      = errors.New("fleet: plan selects no machines")
)

// Intent is the operator's goal for a fleet operation.
type Intent int

// Plan intents.
const (
	// IntentDrain moves every enclave off the source machines (host
	// maintenance: the machines stay provisioned but end up empty).
	IntentDrain Intent = iota + 1
	// IntentRebalance evens out enclave counts across all machines.
	IntentRebalance
	// IntentEvacuate moves every enclave off the source machines onto an
	// explicit set of target machines (e.g. a different rack or zone).
	IntentEvacuate
)

// String names the intent.
func (i Intent) String() string {
	switch i {
	case IntentDrain:
		return "drain"
	case IntentRebalance:
		return "rebalance"
	case IntentEvacuate:
		return "evacuate"
	default:
		return "unknown"
	}
}

// Plan expresses one fleet operation declaratively; Compile resolves it
// against the data center's current inventory into Assignments.
type Plan struct {
	Intent Intent
	// Sources are the machines to move enclaves off (Drain, Evacuate).
	// Unused for Rebalance, which considers every machine.
	Sources []string
	// Targets restricts destinations to the named machines (Drain,
	// Evacuate; rebalance plans reject it — they level across every live
	// machine by construction). Empty means every live machine that is
	// not a source.
	Targets []string
	// Policy places each enclave on a target (Drain, Evacuate) and picks
	// replacement destinations when a machine dies mid-operation. Nil
	// means LeastLoaded. Rebalance placement always uses the built-in
	// max-to-min leveler (any other placement could unbalance the fleet);
	// its Policy applies to redirects only.
	Policy Policy
	// Recover turns on recovery mode for Drain/Evacuate plans: sources
	// that are DEAD no longer contribute zero assignments (their parked
	// migrations used to park forever) — instead, every escrowed enclave
	// they lost is scheduled for escrow-based resurrection on a rack
	// peer among the targets. Live sources still migrate normally, so
	// one plan empties a half-failed rack.
	Recover bool
	// RemoteTargets adds destinations in OTHER data centers (Drain,
	// Evacuate): machines reachable over a federation WAN link whose
	// Migration Enclave addresses have been exported into this data
	// center's network. Each carries the link name it is reached
	// through; the orchestrator caps concurrency per link
	// (Config.LinkCap), applies WAN-scaled backoff to deliveries that
	// traverse a link, and journals the link per migration.
	RemoteTargets []RemoteTarget
}

// RemoteTarget names one cross-datacenter destination machine and the
// WAN link it is reached through.
type RemoteTarget struct {
	Machine *cloud.Machine
	Link    string
}

// Drain plans moving every enclave off the given machines.
func Drain(machines ...string) Plan {
	return Plan{Intent: IntentDrain, Sources: machines}
}

// Rebalance plans evening out enclave counts across all machines.
func Rebalance() Plan {
	return Plan{Intent: IntentRebalance}
}

// Evacuate plans moving every enclave off sources onto targets.
func Evacuate(sources, targets []string) Plan {
	return Plan{Intent: IntentEvacuate, Sources: sources, Targets: targets}
}

// RecoverLost plans the resurrection of dead machines' escrowed enclaves
// on rack peers (an evacuation in recovery mode). Empty targets means
// every live non-source machine; only rack peers of each dead source are
// actually eligible.
func RecoverLost(sources, targets []string) Plan {
	return Plan{Intent: IntentEvacuate, Sources: sources, Targets: targets, Recover: true}
}

// Assignment is one planned migration: move App from Source to Dest —
// or, in recovery mode (Recover true, App nil), resurrect the dead
// source's Lost enclave on Dest from the rack escrow.
type Assignment struct {
	App     *cloud.App
	Source  *cloud.Machine
	Dest    *cloud.Machine
	Recover bool
	Lost    cloud.LostApp
}

// Policy chooses a destination for one enclave. load maps machine ID to
// its enclave count: during plan compilation, live apps plus
// already-planned arrivals (the load as it will be); during
// mid-operation redirects, the live count at that moment.
//
// app is nil when placing an escrow-based resurrection (recovery mode):
// the enclave is dead, so there is no live *cloud.App to inspect —
// policies must tolerate a nil app and fall back to load-only placement.
type Policy interface {
	Name() string
	Pick(app *cloud.App, candidates []*cloud.Machine, load map[string]int) (*cloud.Machine, error)
}

// LeastLoaded places each enclave on the candidate with the fewest
// planned enclaves, breaking ties by machine ID.
type LeastLoaded struct{}

// Name identifies the policy.
func (LeastLoaded) Name() string { return "least-loaded" }

// Pick implements Policy.
func (LeastLoaded) Pick(_ *cloud.App, candidates []*cloud.Machine, load map[string]int) (*cloud.Machine, error) {
	if len(candidates) == 0 {
		return nil, ErrNoDestination
	}
	best := candidates[0]
	for _, c := range candidates[1:] {
		if load[c.ID()] < load[best.ID()] ||
			(load[c.ID()] == load[best.ID()] && c.ID() < best.ID()) {
			best = c
		}
	}
	return best, nil
}

// RoundRobin cycles through the candidates in order, ignoring load.
// Safe for concurrent use (the orchestrator also consults the policy
// from worker goroutines when re-targeting).
type RoundRobin struct {
	mu   sync.Mutex
	next int
}

// Name identifies the policy.
func (*RoundRobin) Name() string { return "round-robin" }

// Pick implements Policy.
func (r *RoundRobin) Pick(_ *cloud.App, candidates []*cloud.Machine, _ map[string]int) (*cloud.Machine, error) {
	if len(candidates) == 0 {
		return nil, ErrNoDestination
	}
	r.mu.Lock()
	m := candidates[r.next%len(candidates)]
	r.next++
	r.mu.Unlock()
	return m, nil
}

// defaultTargets is the shared default-destination rule for plans
// without explicit Targets, used both at compile time and for redirect
// candidates: every machine that is not a source and whose ME is alive
// (no attempt is wasted planning onto a known-dead machine).
func defaultTargets(dc *cloud.DataCenter, isSource map[string]bool) []*cloud.Machine {
	var targets []*cloud.Machine
	for _, m := range dc.Machines() {
		if !isSource[m.ID()] && m.ME.Enclave().Alive() {
			targets = append(targets, m)
		}
	}
	return targets
}

// resolve maps machine IDs to machines, failing on unknown IDs.
func resolve(dc *cloud.DataCenter, ids []string) ([]*cloud.Machine, error) {
	ms := make([]*cloud.Machine, 0, len(ids))
	for _, id := range ids {
		m, ok := dc.Machine(id)
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrUnknownMachine, id)
		}
		ms = append(ms, m)
	}
	return ms, nil
}

// sortedApps returns a machine's live apps in deterministic (image name)
// order, so compiled plans are reproducible.
func sortedApps(m *cloud.Machine) []*cloud.App {
	apps := m.Apps()
	sort.Slice(apps, func(i, j int) bool {
		return apps[i].Image().Name < apps[j].Image().Name
	})
	return apps
}

// Compile resolves the plan against the data center's live inventory and
// returns the migration assignments to execute. Compilation is a pure
// read of the inventory; nothing moves until the orchestrator executes
// the assignments.
func (p Plan) Compile(dc *cloud.DataCenter) ([]Assignment, error) {
	policy := p.Policy
	if policy == nil {
		policy = LeastLoaded{}
	}
	switch p.Intent {
	case IntentDrain, IntentEvacuate:
		return p.compileDrain(dc, policy)
	case IntentRebalance:
		return p.compileRebalance(dc, policy)
	default:
		return nil, fmt.Errorf("fleet: invalid plan intent %d", p.Intent)
	}
}

// compileDrain handles Drain and Evacuate: all apps leave the sources.
func (p Plan) compileDrain(dc *cloud.DataCenter, policy Policy) ([]Assignment, error) {
	if len(p.Sources) == 0 {
		return nil, ErrEmptyPlan
	}
	sources, err := resolve(dc, p.Sources)
	if err != nil {
		return nil, err
	}
	isSource := make(map[string]bool, len(sources))
	for _, s := range sources {
		isSource[s.ID()] = true
	}
	var targets []*cloud.Machine
	if len(p.Targets) > 0 {
		if targets, err = resolve(dc, p.Targets); err != nil {
			return nil, err
		}
		for _, t := range targets {
			if isSource[t.ID()] {
				return nil, fmt.Errorf("fleet: machine %q is both source and target", t.ID())
			}
		}
	} else if len(p.RemoteTargets) == 0 {
		// Explicitly named Targets are taken as given (the operator may
		// know a machine is coming back); the default set skips dead ones.
		// A purely remote plan (RemoteTargets only) drains across the WAN
		// without spilling onto local machines.
		targets = defaultTargets(dc, isSource)
	}
	for _, rt := range p.RemoteTargets {
		if rt.Machine == nil {
			return nil, fmt.Errorf("%w: nil remote target", ErrUnknownMachine)
		}
		targets = append(targets, rt.Machine)
	}
	if len(targets) == 0 {
		return nil, ErrNoDestination
	}
	load := make(map[string]int, len(targets))
	for _, t := range targets {
		load[t.ID()] = t.AppCount()
	}
	var out []Assignment
	for _, src := range sources {
		if p.Recover && !src.Alive() {
			recovered, err := compileRecovery(src, targets, policy, load)
			if err != nil {
				return nil, err
			}
			out = append(out, recovered...)
			continue
		}
		for _, app := range sortedApps(src) {
			dest, err := policy.Pick(app, targets, load)
			if err != nil {
				return nil, err
			}
			load[dest.ID()]++
			out = append(out, Assignment{App: app, Source: src, Dest: dest})
		}
	}
	return out, nil
}

// compileRecovery schedules escrow-based resurrection for a dead
// source's lost enclaves: each escrowed lost app is placed on a live
// rack peer of the source (only peers share the escrow and the
// counters). Un-escrowed apps are skipped — nothing can bring them back
// but a Restart of their own machine.
func compileRecovery(src *cloud.Machine, targets []*cloud.Machine, policy Policy, load map[string]int) ([]Assignment, error) {
	lost := src.LostApps()
	sort.Slice(lost, func(i, j int) bool { return lost[i].Image.Name < lost[j].Image.Name })
	srcGroup := src.Group()
	var peers []*cloud.Machine
	if srcGroup != nil {
		for _, t := range targets {
			if t.Group() == srcGroup && t.ME.Enclave().Alive() {
				peers = append(peers, t)
			}
		}
	}
	var out []Assignment
	for _, la := range lost {
		if !la.Escrowed {
			continue
		}
		if len(peers) == 0 {
			return nil, fmt.Errorf("%w: no live rack peer to recover %s from %s",
				ErrNoDestination, la.Image.Name, src.ID())
		}
		dest, err := policy.Pick(nil, peers, load)
		if err != nil {
			return nil, err
		}
		load[dest.ID()]++
		out = append(out, Assignment{Source: src, Dest: dest, Recover: true, Lost: la})
	}
	return out, nil
}

// compileRebalance moves apps from the most- to the least-loaded machines
// until no machine is more than one enclave above any other. Placement is
// inherent to the leveling algorithm, so the plan's Policy is not
// consulted here (it still governs mid-operation redirects).
func (p Plan) compileRebalance(dc *cloud.DataCenter, _ Policy) ([]Assignment, error) {
	if len(p.Sources) > 0 || len(p.Targets) > 0 || len(p.RemoteTargets) > 0 {
		return nil, fmt.Errorf("fleet: rebalance considers every machine; Sources/Targets are not supported")
	}
	var machines []*cloud.Machine
	for _, m := range dc.Machines() {
		// A dead machine would look like an empty receiver and attract
		// half the fleet; leave it out until it is re-provisioned.
		if m.ME.Enclave().Alive() {
			machines = append(machines, m)
		}
	}
	if len(machines) < 2 {
		return nil, ErrEmptyPlan
	}
	byID := make(map[string]*cloud.Machine, len(machines))
	pending := make(map[string][]*cloud.App, len(machines))
	load := make(map[string]int, len(machines))
	for _, m := range machines {
		byID[m.ID()] = m
		pending[m.ID()] = sortedApps(m)
		load[m.ID()] = len(pending[m.ID()])
	}
	var out []Assignment
	for {
		maxID, minID := "", ""
		for _, m := range machines {
			id := m.ID()
			if maxID == "" || load[id] > load[maxID] {
				maxID = id
			}
			if minID == "" || load[id] < load[minID] {
				minID = id
			}
		}
		if load[maxID]-load[minID] <= 1 {
			return out, nil
		}
		apps := pending[maxID]
		app := apps[len(apps)-1]
		pending[maxID] = apps[:len(apps)-1]
		load[maxID]--
		load[minID]++
		out = append(out, Assignment{App: app, Source: byID[maxID], Dest: byID[minID]})
	}
}
