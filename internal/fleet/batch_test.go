package fleet_test

import (
	"context"
	"testing"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/sim"
	"repro/internal/transport"
)

// TestDrainBatched drains a large fleet with BatchSize 16: every
// migration must complete with its DONE confirmed, and all counter
// values and sealed secrets must survive, exactly as in the classic
// one-at-a-time path.
func TestDrainBatched(t *testing.T) {
	lat := sim.NewInstantLatency()
	net := transport.NewNetwork(lat)
	meter := fleet.NewMeter(net)
	dc, err := cloud.NewDataCenterWithNetwork("dc", lat, meter)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := dc.AddMachine("A")
	b, _ := dc.AddMachine("B")
	c, _ := dc.AddMachine("C")

	const n = 60
	states := launchApps(t, a, n)

	orch := fleet.New(dc, fleet.Config{Workers: 8, BatchSize: 16, Meter: meter})
	report, err := orch.Execute(context.Background(), fleet.Drain("A"))
	if err != nil {
		t.Fatal(err)
	}
	if report.Completed != n || report.Failed != 0 || report.Canceled != 0 {
		t.Fatalf("report: %+v", report)
	}
	if got := a.AppCount(); got != 0 {
		t.Fatalf("A still hosts %d apps after drain", got)
	}
	if a.ME.PendingOutgoing() != 0 {
		t.Fatalf("source ME still holds %d unconfirmed migrations", a.ME.PendingOutgoing())
	}
	if b.AppCount()+c.AppCount() != n {
		t.Fatalf("apps lost: B=%d C=%d, want total %d", b.AppCount(), c.AppCount(), n)
	}
	verifySurvival(t, states, []*cloud.Machine{b, c})

	for _, e := range report.Journal.Entries() {
		if !e.SourceFrozen {
			t.Fatalf("%s: source not frozen after migration", e.App)
		}
		if !e.DoneConfirmed {
			t.Fatalf("%s: DONE confirmation missing", e.App)
		}
	}
	if !report.HasLatency || report.Latency.N != n {
		t.Fatalf("latency summary missing or wrong N: %+v", report.Latency)
	}
}

// TestDrainBatchedSameImage puts several apps sharing one enclave
// identity into the fleet: the grouper must keep same-MRENCLAVE
// members out of a single batch, and every copy must still land.
func TestDrainBatchedSameImage(t *testing.T) {
	dc, err := cloud.NewDataCenter("dc", sim.NewInstantLatency())
	if err != nil {
		t.Fatal(err)
	}
	a, _ := dc.AddMachine("A")
	b, _ := dc.AddMachine("B")

	const n = 6
	img := testImage("twin")
	for i := 0; i < n; i++ {
		if _, err := a.LaunchApp(img, core.NewMemoryStorage(), core.InitNew); err != nil {
			t.Fatalf("launch twin %d: %v", i, err)
		}
	}
	orch := fleet.New(dc, fleet.Config{Workers: 4, BatchSize: 8})
	report, err := orch.Execute(context.Background(), fleet.Drain("A"))
	if err != nil {
		t.Fatal(err)
	}
	if report.Completed != n || report.Failed != 0 {
		t.Fatalf("report: %+v", report)
	}
	if b.AppCount() != n {
		t.Fatalf("B hosts %d apps, want %d", b.AppCount(), n)
	}
}
