package fleet_test

import (
	"context"
	"testing"

	"repro/internal/fleet"
	"repro/internal/obs"
)

// TestKillRecoverSingleTrace is the tracing acceptance test for the
// failure path: one trace ID follows a kill -> recover sequence from the
// orchestrator's root span through the escrow fetch and the binding
// arbitration to the resurrected library, and the audit events carry the
// same trace.
func TestKillRecoverSingleTrace(t *testing.T) {
	dc := newRackDC(t, 1, "r1", "r2", "r3")
	observer := obs.NewObserver()
	dc.SetObserver(observer)
	r1 := mustMachine(t, dc, "r1")
	const apps = 3
	launchApps(t, r1, apps)
	r1.Kill()

	orch := fleet.New(dc, fleet.Config{Workers: 2, Obs: observer})
	report, err := orch.Execute(context.Background(), fleet.RecoverLost([]string{"r1"}, nil))
	if err != nil {
		t.Fatal(err)
	}
	if report.Completed != apps {
		t.Fatalf("recovery report: %s", report)
	}

	// Each recovery is one trace rooted at fleet.recover, containing the
	// escrow fetch, the single-use binding arbitration, and the library
	// resurrection.
	recoveries := 0
	for _, spans := range observer.Tracer.ByTrace() {
		names := make(map[string]int, len(spans))
		var root obs.Span
		for _, s := range spans {
			names[s.Name]++
			if s.ParentID == 0 {
				root = s
			}
		}
		if names["fleet.recover"] == 0 {
			continue
		}
		recoveries++
		if root.Name != "fleet.recover" {
			t.Errorf("recovery trace rooted at %q, want fleet.recover", root.Name)
		}
		for _, want := range []string{"lib.recover", "escrow.get", "binding.win"} {
			if names[want] == 0 {
				t.Errorf("recovery trace missing span %q (have %v)", want, names)
			}
		}

		// The resurrection and binding-win audit events are stamped with
		// this trace's ID.
		var win, resurrect bool
		for _, e := range observer.Events.Events() {
			if e.Trace.TraceID != root.TraceID {
				continue
			}
			switch e.Type {
			case obs.EventBindingWin:
				win = true
			case obs.EventResurrection:
				resurrect = true
			}
		}
		if !win || !resurrect {
			t.Errorf("trace %x: binding-win=%v resurrection=%v, want both audit events",
				root.TraceID, win, resurrect)
		}
	}
	if recoveries != apps {
		t.Fatalf("found %d recovery traces, want %d", recoveries, apps)
	}

	// The outcome counters and latency histogram absorbed every recovery.
	snap := observer.Metrics.Snapshot()
	if n := snap.Counters["fleet.recovery.completed"]; n != apps {
		t.Errorf("fleet.recovery.completed = %d, want %d", n, apps)
	}
	h, ok := snap.Histograms["fleet.recovery.latency"]
	if !ok || h.Count != apps {
		t.Errorf("fleet.recovery.latency count = %+v, want %d observations", h, apps)
	}
}
