package fleet

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sgx"
	"repro/internal/stats"
	"repro/internal/transport"
)

// Execution errors.
var (
	// ErrRestoreOnLiveDestination reports a restore failure on a
	// destination whose Migration Enclave is still alive. The orchestrator
	// refuses to redirect in that case: the destination ME may hold a
	// deliverable copy of the state, and re-sending it elsewhere would
	// open a two-copy (fork) window. The migration is reported failed
	// instead, with the data parked safely at the MEs.
	ErrRestoreOnLiveDestination = errors.New("fleet: restore failed on live destination; not redirecting (single-delivery preserved)")
	// ErrSourceNotFrozen reports a completed transfer whose source library
	// did not verify frozen — a violated invariant, never expected.
	ErrSourceNotFrozen = errors.New("fleet: source library not frozen after transfer")
	// ErrAttemptsExhausted reports a migration that used up its attempt
	// budget. The source stays frozen and the data is held at the source
	// Migration Enclave for later redirection — safe, but not completed.
	ErrAttemptsExhausted = errors.New("fleet: delivery attempts exhausted")
	// ErrIdentityBusy reports a migration stopped because the destination
	// held a pending migration of another same-identity enclave; this
	// one's data stays parked at the source ME and a later plan resumes
	// it through its token.
	ErrIdentityBusy = errors.New("fleet: destination held a same-identity migration; data remains parked at source")
	// ErrNoReplicaTarget reports a drain/evacuate whose source hosts a
	// counter replica but no eligible machine can take the role over
	// (every target is a source, dead, or already hosts a replica).
	// Draining anyway would shrink the replica group below 2f+1, so the
	// plan is refused before any enclave moves.
	ErrNoReplicaTarget = errors.New("fleet: no machine available to take over the source's counter-replica role")
)

// EventType classifies orchestrator progress events.
type EventType int

// Event types.
const (
	// EventStart: a worker picked up the migration.
	EventStart EventType = iota + 1
	// EventDelivered: migration data reached the destination ME.
	EventDelivered
	// EventRetry: a delivery attempt failed; the worker will retry.
	EventRetry
	// EventRedirect: the worker re-targeted the migration to a new
	// destination after the planned one became unreachable.
	EventRedirect
	// EventCompleted: restore verified on the destination, source frozen.
	EventCompleted
	// EventFailed: the migration terminated without completing.
	EventFailed
	// EventCanceled: the context was canceled before completion (the
	// migration may never have started).
	EventCanceled
	// EventReplicaHandoff: a source machine's counter-replica role was
	// handed to a target machine before the drain (Source/Dest name the
	// machines; App is empty).
	EventReplicaHandoff
	// EventRecovered: a dead source's enclave was resurrected on Dest
	// from the rack escrow (recovery mode).
	EventRecovered
)

// Event is one progress notification, emitted synchronously from worker
// goroutines (handlers must be fast and concurrency-safe).
type Event struct {
	Type    EventType
	App     string
	Source  string
	Dest    string
	Attempt int
	// Link names the federation WAN link the destination is reached
	// through (empty for intra-DC destinations).
	Link string
	Err  error
}

// Config tunes the orchestrator.
type Config struct {
	// Workers bounds concurrent migrations. Default 8.
	Workers int
	// BatchSize groups migrations that share a (source, destination)
	// pair into batched stream deliveries of up to this many enclaves
	// (core.MigrationEnclave.BeginBatch): one attested session — resumed
	// when cached — and one pipelined chunk stream amortize the per-
	// migration protocol cost. Default 1 preserves the classic one-
	// migration-per-exchange path. Recoveries and token-resumed
	// migrations always run the classic path.
	BatchSize int
	// BatchWindow and BatchChunkBytes tune the batch stream's pipelining
	// (max chunks in flight, bytes per chunk). Zero means the core
	// defaults; mainly a bench/test knob.
	BatchWindow     int
	BatchChunkBytes int
	// MaxAttempts bounds delivery attempts per migration. Default 4.
	MaxAttempts int
	// RetryBackoff is the delay before the second attempt; it grows by
	// BackoffFactor per attempt, capped at MaxBackoff. Defaults 5ms, 2, 250ms.
	RetryBackoff  time.Duration
	BackoffFactor float64
	MaxBackoff    time.Duration
	// BackoffJitter randomizes each retry delay: a computed delay d
	// becomes d·(1 + u·BackoffJitter) with u uniform in [0, 1), which
	// decorrelates a worker pool hammering the same recovering machine
	// or WAN link. Zero (the default) disables jitter, keeping retry
	// timing fully deterministic.
	BackoffJitter float64
	// Rand is the randomness source behind BackoffJitter. Chaos and
	// replay harnesses inject a seeded source so jittered schedules
	// replay identically; nil falls back to a fixed-seed source. The
	// orchestrator serializes access to it.
	Rand *rand.Rand
	// Confidence is the CI level of the report's latency summary. Default 0.99
	// (the paper's level).
	Confidence float64
	// Meter, when set, contributes wire-traffic totals to the report.
	Meter *Meter
	// OnEvent, when set, receives progress events.
	OnEvent func(Event)
	// SnapshotStore, when set, receives an encoded journal snapshot
	// mid-plan and at plan end — durable progress an orchestrator that
	// crashes mid-plan can be resumed from (DecodeJournal +
	// ResumeParked), instead of only plan-end snapshots. Writes are
	// best-effort: a failing store never fails the plan.
	SnapshotStore core.Storage
	// SnapshotEvery is the snapshot cadence: one write per that many
	// recorded outcomes (default 1 — after every outcome). Each write
	// encodes the whole journal-so-far under one lock, so plans with
	// thousands of migrations should raise it to keep the bookkeeping
	// off the throughput path; the final snapshot is always written.
	SnapshotEvery int
	// LinkCap bounds concurrent deliveries per federation WAN link (by
	// link name): a cross-DC drain must not stampede a constrained link
	// with the whole worker pool. Zero/absent means no per-link cap.
	LinkCap map[string]int
	// WANRetryBackoff is the base backoff for retrying deliveries that
	// traverse a WAN link (WAN failures — loss, congestion, partitions —
	// clear on much longer scales than intra-DC blips). Default
	// 4×RetryBackoff.
	WANRetryBackoff time.Duration
	// Obs, when set, receives fleet telemetry: one root span per
	// migration ("fleet.migrate") and recovery ("fleet.recover") whose
	// trace context is threaded through freeze, transfer, WAN hops, and
	// restore, plus completion latency histograms
	// ("fleet.migration.latency", "fleet.recovery.latency") and outcome
	// counters. Nil keeps all instrumentation as no-ops.
	Obs *obs.Observer
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 1
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 4
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 5 * time.Millisecond
	}
	if c.BackoffFactor < 1 {
		c.BackoffFactor = 2
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 250 * time.Millisecond
	}
	if c.Confidence <= 0 || c.Confidence >= 1 {
		c.Confidence = 0.99
	}
	if c.WANRetryBackoff <= 0 {
		c.WANRetryBackoff = 4 * c.RetryBackoff
	}
	return c
}

// Report is the outcome of one executed plan.
type Report struct {
	Planned   int
	Completed int
	Failed    int
	Canceled  int
	// Wall is the end-to-end wall time of the whole operation.
	Wall time.Duration
	// Throughput is completed migrations per second of wall time.
	Throughput float64
	// Latency summarizes per-migration latency (ms, mean ± CI); valid
	// when at least two migrations completed.
	Latency    stats.Summary
	HasLatency bool
	// WireBytes/WireMessages are the traffic the configured Meter
	// observed during this run (a start-to-end delta: plans running
	// concurrently with a shared Meter each count the overlap window's
	// traffic).
	WireBytes    int64
	WireMessages int64
	// ReplicaHandoffs counts counter-replica roles handed off source
	// machines before their enclaves moved.
	ReplicaHandoffs int
	// Journal holds the per-migration entries behind the aggregates.
	Journal *Journal
}

// String renders a one-look operations summary.
func (r *Report) String() string {
	s := fmt.Sprintf("%d planned: %d completed, %d failed, %d canceled in %s (%.1f migrations/s)",
		r.Planned, r.Completed, r.Failed, r.Canceled, r.Wall.Round(time.Millisecond), r.Throughput)
	if r.HasLatency {
		s += fmt.Sprintf("\nper-migration latency: %s ms", r.Latency)
	}
	if r.WireMessages > 0 {
		s += fmt.Sprintf("\nwire traffic: %d messages, %d bytes", r.WireMessages, r.WireBytes)
	}
	return s
}

// Orchestrator executes compiled plans against one data center. Plans
// run through one Orchestrator — including concurrent Execute calls —
// share its delivery serialization; running two Orchestrators against
// the same DataCenter concurrently forfeits that coordination (the
// enclave-level guarantees still hold, but racing same-identity
// migrations can spuriously fail).
type Orchestrator struct {
	dc    *cloud.DataCenter
	cfg   Config
	locks *lockTable

	// remoteMu guards the cross-DC bookkeeping below.
	remoteMu sync.Mutex
	// remotes remembers every remote destination any plan has named, by
	// ME address, so resumed migrations (ResumeParked) can resolve a
	// parked transfer's previous destination even when it lives in a
	// peer data center.
	remotes map[transport.Address]RemoteTarget
	// linkSlots are the per-link concurrency semaphores (LinkCap).
	linkSlots map[string]chan struct{}

	// jitterMu serializes draws from the backoff-jitter source.
	jitterMu sync.Mutex
	jitter   *rand.Rand
}

// New creates an orchestrator for the data center.
func New(dc *cloud.DataCenter, cfg Config) *Orchestrator {
	o := &Orchestrator{
		dc:        dc,
		cfg:       cfg.withDefaults(),
		locks:     newLockTable(),
		remotes:   make(map[transport.Address]RemoteTarget),
		linkSlots: make(map[string]chan struct{}),
	}
	if o.cfg.BackoffJitter > 0 {
		o.jitter = o.cfg.Rand
		if o.jitter == nil {
			o.jitter = rand.New(rand.NewSource(1))
		}
	}
	return o
}

// rememberRemotes records a plan's remote targets for later resolution
// (redirects, resumes) and returns the link label per target machine.
func (o *Orchestrator) rememberRemotes(rts []RemoteTarget) map[*cloud.Machine]string {
	links := make(map[*cloud.Machine]string)
	o.remoteMu.Lock()
	defer o.remoteMu.Unlock()
	for _, rt := range rts {
		if rt.Machine == nil {
			continue
		}
		o.remotes[rt.Machine.MEAddress()] = rt
		links[rt.Machine] = rt.Link
	}
	// Previously remembered remotes keep their labels (a resumed plan
	// has no RemoteTargets of its own).
	for _, rt := range o.remotes {
		if _, ok := links[rt.Machine]; !ok {
			links[rt.Machine] = rt.Link
		}
	}
	return links
}

// linkSlot returns the semaphore for a capped link (nil when uncapped).
func (o *Orchestrator) linkSlot(link string) chan struct{} {
	if link == "" {
		return nil
	}
	cap, ok := o.cfg.LinkCap[link]
	if !ok || cap <= 0 {
		return nil
	}
	o.remoteMu.Lock()
	defer o.remoteMu.Unlock()
	sem, ok := o.linkSlots[link]
	if !ok {
		sem = make(chan struct{}, cap)
		o.linkSlots[link] = sem
	}
	return sem
}

func (o *Orchestrator) emit(e Event) {
	if o.cfg.OnEvent != nil {
		o.cfg.OnEvent(e)
	}
}

// lockTable serializes deliveries per (destination, enclave identity)
// across every plan an Orchestrator runs: the destination ME stores at
// most one pending envelope per MRENCLAVE, so two concurrent migrations
// of same-identity enclaves to one machine must not interleave. Entries
// are one mutex per (machine, image) pair ever migrated — negligible.
type lockTable struct {
	mu    sync.Mutex
	locks map[string]*sync.Mutex
}

func newLockTable() *lockTable {
	return &lockTable{locks: make(map[string]*sync.Mutex)}
}

// lock acquires the (destination, identity) slot and returns its unlock.
func (t *lockTable) lock(destID string, mre sgx.Measurement) func() {
	key := fmt.Sprintf("%s|%x", destID, mre)
	t.mu.Lock()
	mu, ok := t.locks[key]
	if !ok {
		mu = &sync.Mutex{}
		t.locks[key] = mu
	}
	t.mu.Unlock()
	mu.Lock()
	return mu.Unlock
}

// machineByAddress finds the machine whose ME listens on addr — in this
// data center, or among the remote destinations plans have named.
func (o *Orchestrator) machineByAddress(addr transport.Address) *cloud.Machine {
	for _, m := range o.dc.Machines() {
		if m.MEAddress() == addr {
			return m
		}
	}
	o.remoteMu.Lock()
	defer o.remoteMu.Unlock()
	if rt, ok := o.remotes[addr]; ok {
		return rt.Machine
	}
	return nil
}

// pickAlternate chooses a live replacement destination among the plan's
// targets, consulting the placement policy. Returns nil when no live
// alternative exists.
func (o *Orchestrator) pickAlternate(app *cloud.App, current *cloud.Machine, source *cloud.Machine, targets []*cloud.Machine, policy Policy) *cloud.Machine {
	var candidates []*cloud.Machine
	load := make(map[string]int)
	for _, t := range targets {
		if t.ID() == current.ID() || t.ID() == source.ID() {
			continue
		}
		if !t.ME.Enclave().Alive() {
			continue
		}
		candidates = append(candidates, t)
		load[t.ID()] = t.AppCount()
	}
	if len(candidates) == 0 {
		return nil
	}
	alt, err := policy.Pick(app, candidates, load)
	if err != nil {
		return nil
	}
	return alt
}

// matchesSentinel recognizes a core sentinel across transports: it
// survives only as message text when errors cross a TCP Messenger or
// are folded into ErrMigrationPending's detail.
func matchesSentinel(err, sentinel error) bool {
	return err != nil &&
		(errors.Is(err, sentinel) || strings.Contains(err.Error(), sentinel.Error()))
}

func isAlreadyPending(err error) bool { return matchesSentinel(err, core.ErrAlreadyPending) }

// isMigrationDone recognizes the source ME's already-completed refusal.
func isMigrationDone(err error) bool { return matchesSentinel(err, core.ErrMigrationDone) }

// isEnvelopeConsumed recognizes the destination's fetched-envelope
// tombstone refusal; completion is then decided by the source's record.
func isEnvelopeConsumed(err error) bool { return matchesSentinel(err, core.ErrEnvelopeConsumed) }

// backoff waits before retry attempt (attempt >= 2), honoring ctx. WAN
// deliveries back off from a larger base (WANRetryBackoff): loss and
// partitions on an inter-DC link clear on longer scales than intra-DC
// blips, and hammering a lossy link just loses more.
func (o *Orchestrator) backoff(ctx context.Context, attempt int, wan bool) error {
	d := o.cfg.RetryBackoff
	if wan {
		d = o.cfg.WANRetryBackoff
	}
	for i := 2; i < attempt; i++ {
		d = time.Duration(float64(d) * o.cfg.BackoffFactor)
		if d >= o.cfg.MaxBackoff {
			d = o.cfg.MaxBackoff
			break
		}
	}
	if o.jitter != nil {
		o.jitterMu.Lock()
		u := o.jitter.Float64()
		o.jitterMu.Unlock()
		d = time.Duration(float64(d) * (1 + u*o.cfg.BackoffJitter))
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// acquireLink takes one concurrency slot on a capped WAN link (no-op
// for uncapped links and intra-DC destinations), honoring ctx while
// waiting. The returned release must be called exactly once.
func (o *Orchestrator) acquireLink(ctx context.Context, link string) (func(), error) {
	sem := o.linkSlot(link)
	if sem == nil {
		return func() {}, nil
	}
	select {
	case sem <- struct{}{}:
		return func() { <-sem }, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// stateBytes computes the canonical encoded size of the app's Table I
// payload (active-counter table + MSK). The real envelope's size varies
// by a few dozen bytes with the digits of the secret values, which the
// orchestrator cannot read; key material is sized worst-case here so the
// figure is a stable near-upper bound.
func stateBytes(app *cloud.App) int {
	var data core.MigrationData
	for i := range data.MSK {
		data.MSK[i] = 255
	}
	for i := 0; i < app.Library.ActiveCounters() && i < core.NumCounters; i++ {
		data.CountersActive[i] = true
	}
	raw, err := data.Encode()
	if err != nil {
		return 0
	}
	return len(raw)
}

// Execute compiles the plan and runs every assignment through the worker
// pool. It returns a report plus the journal of per-migration outcomes;
// the returned error covers orchestration-level failures (bad plan,
// canceled context), not individual migration failures, which are
// reported per entry.
func (o *Orchestrator) Execute(ctx context.Context, plan Plan) (*Report, error) {
	assignments, err := plan.Compile(o.dc)
	if err != nil {
		return nil, err
	}
	return o.Run(ctx, plan, assignments)
}

// Run executes pre-compiled assignments (Execute's second half; exposed
// so callers can inspect or filter the compiled plan first).
func (o *Orchestrator) Run(ctx context.Context, plan Plan, assignments []Assignment) (*Report, error) {
	policy := plan.Policy
	if policy == nil {
		policy = LeastLoaded{}
	}
	// Redirect candidates: every destination the plan may use, not just
	// the ones the compiled assignments happen to hit — explicit targets
	// when given, otherwise the shared default rule. pickAlternate
	// additionally excludes each migration's own source and re-checks
	// liveness at redirect time.
	var targets []*cloud.Machine
	if len(plan.Targets) > 0 {
		resolved, err := resolve(o.dc, plan.Targets)
		if err != nil {
			return nil, err
		}
		targets = resolved
	} else {
		isSource := make(map[string]bool, len(plan.Sources))
		for _, id := range plan.Sources {
			isSource[id] = true
		}
		targets = defaultTargets(o.dc, isSource)
	}

	// Remote destinations: remember them for redirects/resumes and label
	// each target machine with the WAN link it is reached through.
	links := o.rememberRemotes(plan.RemoteTargets)
	for _, rt := range plan.RemoteTargets {
		if rt.Machine != nil {
			targets = append(targets, rt.Machine)
		}
	}

	// A machine being drained must not take its rack's counter-replica
	// share down with it: hand the role to a surviving target first, so
	// the quorum stays at full strength while (and after) the enclaves
	// move (the paper's evacuation story plus rollback protection that
	// outlives the machine). Remote targets are never handoff takers —
	// a replica role cannot leave its rack.
	handoffs, err := o.handoffReplicas(plan, targets, links)
	if err != nil {
		return nil, err
	}

	journal := NewJournal()
	var meterBytes, meterMessages int64
	if o.cfg.Meter != nil {
		meterBytes, meterMessages = o.cfg.Meter.Bytes(), o.cfg.Meter.Messages()
	}
	// snapshot persists the journal-so-far mid-plan (and once at the
	// end). Serialized so concurrent workers cannot interleave a stale
	// snapshot after a newer one; best-effort by design.
	var snapMu sync.Mutex
	snapshot := func() {
		if o.cfg.SnapshotStore == nil {
			return
		}
		snapMu.Lock()
		defer snapMu.Unlock()
		if raw, err := journal.Encode(); err == nil {
			_ = o.cfg.SnapshotStore.Save(raw)
		}
	}
	every := o.cfg.SnapshotEvery
	if every <= 0 {
		every = 1
	}
	var recorded atomic.Int64
	record := func(e Entry) {
		journal.Record(e)
		if recorded.Add(1)%int64(every) == 0 {
			snapshot()
		}
	}
	start := time.Now()
	// Workers consume whole groups: singletons run the classic
	// one-migration path, larger groups run the batched stream pipeline.
	work := make(chan []Assignment)
	cancelGroup := func(group []Assignment) {
		for _, as := range group {
			name := ""
			if as.App != nil {
				name = as.App.Image().Name
			} else if as.Lost.Image != nil {
				name = as.Lost.Image.Name
			}
			record(Entry{
				App: name, Source: as.Source.ID(),
				PlannedDest: as.Dest.ID(), Recovered: as.Recover,
				Status: StatusCanceled, Err: ctx.Err().Error(),
			})
			o.emit(Event{Type: EventCanceled, App: name, Source: as.Source.ID(), Dest: as.Dest.ID(), Err: ctx.Err()})
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < o.cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for group := range work {
				if ctx.Err() != nil {
					cancelGroup(group)
					continue
				}
				if len(group) > 1 {
					for _, e := range o.migrateBatch(ctx, group, targets, policy, links) {
						record(e)
					}
					continue
				}
				as := group[0]
				if as.Recover {
					record(o.recoverOne(ctx, as, targets, policy))
				} else {
					record(o.migrateOne(ctx, as, targets, policy, links))
				}
			}
		}()
	}
	for _, g := range groupAssignments(assignments, o.cfg.BatchSize) {
		work <- g
	}
	close(work)
	wg.Wait()
	snapshot()

	wall := time.Since(start)
	report := &Report{
		Planned:   len(assignments),
		Completed: journal.Count(StatusCompleted),
		Failed:    journal.Count(StatusFailed),
		Canceled:  journal.Count(StatusCanceled),
		Wall:      wall,
		Journal:   journal,
	}
	report.ReplicaHandoffs = handoffs
	if wall > 0 {
		report.Throughput = float64(report.Completed) / wall.Seconds()
	}
	if sum, err := journal.LatencySummary(o.cfg.Confidence); err == nil {
		report.Latency = sum
		report.HasLatency = true
	}
	if o.cfg.Meter != nil {
		// Delta over the run, so provisioning traffic and earlier plans
		// on a shared Meter are not billed to this one.
		report.WireBytes = o.cfg.Meter.Bytes() - meterBytes
		report.WireMessages = o.cfg.Meter.Messages() - meterMessages
	}
	if ctx.Err() != nil {
		return report, ctx.Err()
	}
	return report, nil
}

// handoffReplicas moves the counter-replica role off every drain/
// evacuate source that hosts one, onto the least-loaded eligible target
// (alive, not itself a source, not already hosting a replica). Plans
// whose sources host replicas but have no eligible takers are refused
// with ErrNoReplicaTarget before any enclave moves.
func (o *Orchestrator) handoffReplicas(plan Plan, targets []*cloud.Machine, links map[*cloud.Machine]string) (int, error) {
	if plan.Intent != IntentDrain && plan.Intent != IntentEvacuate {
		return 0, nil
	}
	sources, err := resolve(o.dc, plan.Sources)
	if err != nil {
		return 0, err
	}
	isSource := make(map[string]bool, len(sources))
	for _, s := range sources {
		isSource[s.ID()] = true
	}
	// Phase 1: match every replica-hosting source to a distinct eligible
	// taker before touching anything. A handoff permanently rack-
	// associates the taker, so a plan that cannot be completed must be
	// refused before the first side effect — not midway through.
	type move struct{ src, dst string }
	var moves []move
	claimed := make(map[string]bool)
	for _, src := range sources {
		if !src.Alive() {
			// A dead source's replica share cannot be handed anywhere (its
			// durable counter state is on that machine); the group already
			// runs degraded without it, within its f budget, and recovery
			// mode resurrects the machine's enclaves from the quorum. The
			// operator re-arms the group via Restart+Reseed or an explicit
			// HandoffReplica onto a fresh machine.
			continue
		}
		if !src.HostsReplica() {
			continue
		}
		srcGroup := src.Group()
		var best *cloud.Machine
		for _, t := range targets {
			if isSource[t.ID()] || claimed[t.ID()] || t.HostsReplica() || !t.ME.Enclave().Alive() {
				continue
			}
			// A remote machine cannot take the role: replica groups are
			// rack-scoped, and the rack does not span the WAN.
			if links[t] != "" {
				continue
			}
			// A machine already rack-associated with a different group
			// cannot take this role (its counter facility is spoken for).
			if tg := t.Group(); tg != nil && tg != srcGroup {
				continue
			}
			if best == nil || t.AppCount() < best.AppCount() ||
				(t.AppCount() == best.AppCount() && t.ID() < best.ID()) {
				best = t
			}
		}
		if best == nil {
			return 0, fmt.Errorf("%w: replica on %s", ErrNoReplicaTarget, src.ID())
		}
		claimed[best.ID()] = true
		moves = append(moves, move{src: src.ID(), dst: best.ID()})
	}
	// Phase 2: execute. A failure here (e.g. quorum unreachable) still
	// leaves completed handoffs in place — they are reported through the
	// emitted events and the error.
	handoffs := 0
	for _, mv := range moves {
		if err := o.dc.HandoffReplica(mv.src, mv.dst); err != nil {
			return handoffs, fmt.Errorf("hand off replica %s -> %s (%d of %d done): %w",
				mv.src, mv.dst, handoffs, len(moves), err)
		}
		handoffs++
		o.emit(Event{Type: EventReplicaHandoff, Source: mv.src, Dest: mv.dst})
	}
	return handoffs, nil
}

// recoverOne resurrects one dead source's enclave on the destination
// from the rack escrow (Assignment.Recover), with retry and
// redirect-to-another-rack-peer when the destination dies mid-plan.
// Failures that cannot succeed on any peer — the escrow binding already
// consumed, the state frozen by a migration, the instance still running —
// are terminal immediately.
func (o *Orchestrator) recoverOne(ctx context.Context, as Assignment, targets []*cloud.Machine, policy Policy) Entry {
	dest := as.Dest
	entry := Entry{
		App:         as.Lost.Image.Name,
		Source:      as.Source.ID(),
		PlannedDest: dest.ID(),
		Recovered:   true,
	}
	o.emit(Event{Type: EventStart, App: entry.App, Source: entry.Source, Dest: dest.ID()})
	start := time.Now()
	sp, tc := o.cfg.Obs.StartSpan("fleet.recover", obs.TraceContext{})
	if sp != nil {
		sp.Site = entry.App
	}
	finish := func(st Status, ev EventType, err error) Entry {
		entry.Status = st
		entry.Dest = dest.ID()
		entry.Latency = time.Since(start)
		if err != nil {
			entry.Err = err.Error()
		}
		sp.End()
		if st == StatusCompleted {
			o.cfg.Obs.M().Histogram("fleet.recovery.latency").Observe(entry.Latency)
		}
		o.cfg.Obs.M().Add("fleet.recovery."+st.String(), 1)
		o.emit(Event{Type: ev, App: entry.App, Source: entry.Source, Dest: dest.ID(), Attempt: entry.Attempts, Err: err})
		return entry
	}
	srcGroup := as.Source.Group()
	var lastErr error
	for attempt := 1; attempt <= o.cfg.MaxAttempts; attempt++ {
		entry.Attempts = attempt
		if attempt > 1 {
			if err := o.backoff(ctx, attempt, false); err != nil {
				return finish(StatusCanceled, EventCanceled, err)
			}
			if !dest.ME.Enclave().Alive() {
				for _, t := range targets {
					if t.ID() != dest.ID() && t.ID() != as.Source.ID() &&
						t.Group() == srcGroup && t.ME.Enclave().Alive() {
						entry.Redirects++
						o.emit(Event{Type: EventRedirect, App: entry.App, Source: entry.Source, Dest: t.ID(), Attempt: attempt})
						dest = t
						break
					}
				}
			}
		}
		app, err := dest.RecoverAppCtx(tc, as.Lost.Image, as.Lost.EscrowID)
		if err == nil {
			as.Source.DropLost(as.Lost.EscrowID)
			entry.StateBytes = stateBytes(app)
			entry.Counters = app.Library.ActiveCounters()
			return finish(StatusCompleted, EventRecovered, nil)
		}
		lastErr = err
		if errors.Is(err, core.ErrEscrowConsumed) || errors.Is(err, core.ErrFrozen) ||
			errors.Is(err, cloud.ErrInstanceAlive) {
			// No peer can ever win this record's binding again.
			return finish(StatusFailed, EventFailed, err)
		}
		o.emit(Event{Type: EventRetry, App: entry.App, Source: entry.Source, Dest: dest.ID(), Attempt: attempt, Err: err})
	}
	return finish(StatusFailed, EventFailed,
		fmt.Errorf("%w after %d attempts: %v", ErrAttemptsExhausted, entry.Attempts, lastErr))
}

// ResumeParked finds every parked migration in the data center — the
// unfinished business of crashed or interrupted orchestrators — and runs
// it to completion: for each machine, the source ME's OutstandingTokens
// name the migrations without a DONE, and the frozen libraries holding a
// matching token are re-driven through the normal resume path (which
// prefers the previously targeted machine, restores delivered-but-
// unconfirmed data in place, and redirects only away from dead
// destinations). Call it on orchestrator start; together with mid-plan
// SnapshotStore writes it makes plans survive their orchestrator.
func (o *Orchestrator) ResumeParked(ctx context.Context) (*Report, error) {
	policy := Policy(LeastLoaded{})
	machines := o.dc.Machines()
	targets := defaultTargets(o.dc, nil)
	load := make(map[string]int, len(targets))
	for _, t := range targets {
		load[t.ID()] = t.AppCount()
	}
	var assignments []Assignment
	for _, m := range machines {
		if !m.Alive() {
			continue
		}
		outstanding := make(map[string]bool)
		for _, tok := range m.ME.OutstandingTokens() {
			outstanding[string(tok)] = true
		}
		if len(outstanding) == 0 {
			continue
		}
		for _, app := range m.Apps() {
			tok := app.Library.MigrationToken()
			if tok == nil || !outstanding[string(tok)] || !app.Library.Frozen() {
				continue
			}
			var candidates []*cloud.Machine
			for _, t := range targets {
				if t.ID() != m.ID() && t.ME.Enclave().Alive() {
					candidates = append(candidates, t)
				}
			}
			dest, err := policy.Pick(app, candidates, load)
			if err != nil {
				return nil, fmt.Errorf("fleet: resume %s from %s: %w", app.Image().Name, m.ID(), err)
			}
			load[dest.ID()]++
			assignments = append(assignments, Assignment{App: app, Source: m, Dest: dest})
		}
	}
	return o.Run(ctx, Plan{Intent: IntentDrain, Policy: policy}, assignments)
}

// migrateOne runs one migration end to end: freeze + transfer at the
// source, restore at the destination, verification, and source teardown —
// with retry, backoff, and redirect-on-dead-destination.
//
// Fork-freedom is preserved in every path: the library freezes before any
// data leaves the machine (core.Library.StartMigration), the orchestrator
// redirects only when the previous destination ME is dead (its stored
// copy, if any, died with its enclave memory), and a restore failure on a
// live destination fails the migration instead of re-sending the state.
func (o *Orchestrator) migrateOne(ctx context.Context, as Assignment, targets []*cloud.Machine, policy Policy, links map[*cloud.Machine]string) Entry {
	locks := o.locks
	app, src, dest := as.App, as.Source, as.Dest
	lib := app.Library
	mre := app.Image().Measure()
	entry := Entry{
		App:         app.Image().Name,
		Source:      src.ID(),
		PlannedDest: dest.ID(),
		StateBytes:  stateBytes(app),
		Counters:    app.Library.ActiveCounters(),
		Link:        links[dest],
	}
	o.emit(Event{Type: EventStart, App: entry.App, Source: entry.Source, Dest: dest.ID(), Link: links[dest]})

	start := time.Now()
	sp, tc := o.cfg.Obs.StartSpan("fleet.migrate", obs.TraceContext{})
	if sp != nil {
		sp.Site = entry.App
	}
	finish := func(st Status, err error) Entry {
		entry.Status = st
		entry.Dest = dest.ID()
		entry.Link = links[dest]
		entry.Latency = time.Since(start)
		entry.SourceFrozen = lib.Frozen()
		if err != nil {
			entry.Err = err.Error()
		}
		sp.End()
		if st == StatusCompleted && entry.Attempts > 0 {
			o.cfg.Obs.M().Histogram("fleet.migration.latency").Observe(entry.Latency)
		}
		o.cfg.Obs.M().Add("fleet.migration."+st.String(), 1)
		evType := EventFailed
		switch st {
		case StatusCompleted:
			evType = EventCompleted
		case StatusCanceled:
			evType = EventCanceled
		}
		o.emit(Event{Type: evType, App: entry.App, Source: entry.Source, Dest: dest.ID(), Attempt: entry.Attempts, Link: links[dest], Err: err})
		return entry
	}

	// complete finalizes a successful restore on dest.
	complete := func() Entry {
		if !lib.Frozen() {
			return finish(StatusFailed, ErrSourceNotFrozen)
		}
		done, derr := lib.MigrationComplete()
		entry.DoneConfirmed = derr == nil && done
		app.Terminate()
		return finish(StatusCompleted, nil)
	}
	// completedElsewhere finalizes a migration whose restore was performed
	// outside this worker (an earlier plan, or a concurrent same-identity
	// worker consuming our envelope): only the frozen source remains.
	completedElsewhere := func() Entry {
		entry.DoneConfirmed = true
		app.Terminate()
		return finish(StatusCompleted, nil)
	}

	// A non-nil token here means the app already froze in an earlier plan
	// that did not finish; this run resumes it instead of calling
	// StartMigration (which would fail with ErrFrozen). Where the data
	// sits decides the fork-safe move: parked at the source ME → redirect;
	// delivered to a still-live destination → finish the restore *there*,
	// never re-send; delivered to a dead destination → its copy died with
	// the ME, redirect is safe.
	token := lib.MigrationToken()
	if token != nil {
		prevDest, sent, done, serr := src.ME.OutgoingStatus(token)
		if serr != nil {
			return finish(StatusFailed, fmt.Errorf("resume parked migration: %w", serr))
		}
		if done {
			// The destination confirmed its restore in the earlier plan;
			// nothing to move — report where the enclave actually landed,
			// not this plan's choice.
			if prev := o.machineByAddress(prevDest); prev != nil {
				dest = prev
			}
			return completedElsewhere()
		}
		if sent {
			// DataCenter machines are never removed, so a delivered-to
			// address always resolves; nil means the address was never one
			// of ours (cannot happen via this orchestrator).
			if prev := o.machineByAddress(prevDest); prev != nil && prev.ME.Enclave().Alive() {
				// Restore-only: the data was delivered by the earlier
				// plan, so this plan performs no delivery (Attempts
				// stays 0 and the entry is excluded from the latency
				// summary, which measures full freeze-through-restore).
				dest = prev
				release, cerr := o.acquireLink(ctx, links[dest])
				if cerr != nil {
					return finish(StatusCanceled, cerr)
				}
				unlock := locks.lock(dest.ID(), mre)
				defer release()
				// Re-check under the lock: a concurrent same-identity
				// worker may just have consumed our envelope (its
				// delivery was refused, so it restored ours instead).
				if _, _, doneNow, serr := src.ME.OutgoingStatus(token); serr == nil && doneNow {
					unlock()
					return completedElsewhere()
				}
				_, err := dest.LaunchApp(app.Image(), core.NewMemoryStorage(), core.InitMigrated)
				unlock()
				if err != nil {
					if doneNow, derr := lib.MigrationComplete(); derr == nil && doneNow {
						return completedElsewhere()
					}
					return finish(StatusFailed, fmt.Errorf("%w: %v", ErrRestoreOnLiveDestination, err))
				}
				return complete()
			}
		}
		// Data is (as far as the source knows) parked at the source ME.
		// Prefer the previously targeted machine while it lives: if a
		// delivered-but-ack-lost transfer actually parked our envelope
		// there, idempotent re-delivery reuses that copy instead of
		// creating a second one on a policy-chosen machine.
		if prev := o.machineByAddress(prevDest); prev != nil && prev.ME.Enclave().Alive() {
			dest = prev
		}
	}

	var lastErr error
	for attempt := 1; attempt <= o.cfg.MaxAttempts; attempt++ {
		entry.Attempts = attempt
		if attempt > 1 {
			if err := o.backoff(ctx, attempt, links[dest] != ""); err != nil {
				return finish(StatusCanceled, err)
			}
			// The planned destination may have died; re-target if a
			// healthy alternative exists (§V-D: "another destination
			// machine is selected").
			if !dest.ME.Enclave().Alive() {
				if alt := o.pickAlternate(app, dest, src, targets, policy); alt != nil {
					entry.Redirects++
					o.emit(Event{Type: EventRedirect, App: entry.App, Source: entry.Source, Dest: alt.ID(), Attempt: attempt, Link: links[alt]})
					dest = alt
				}
			}
		}

		// Deliver, then restore, holding this enclave identity's delivery
		// slot at the destination throughout — and, for WAN destinations,
		// one of the link's concurrency slots (LinkCap). Every retry
		// re-delivers: the only failure mode that reaches the next
		// attempt with data at a destination is a dead destination ME,
		// whose copy died with its enclave memory.
		release, cerr := o.acquireLink(ctx, links[dest])
		if cerr != nil {
			return finish(StatusCanceled, cerr)
		}
		unlock := locks.lock(dest.ID(), mre)
		unlockAll := unlock
		unlock = func() { unlockAll(); release() }
		var err error
		if token == nil {
			// First delivery attempt: freeze, destroy source counters,
			// hand the data to the source ME, try the transfer.
			err = lib.StartMigrationCtx(tc, dest.MEAddress())
			token = lib.MigrationToken()
			if err != nil && !errors.Is(err, core.ErrMigrationPending) {
				unlock()
				return finish(StatusFailed, err)
			}
		} else {
			// Data is parked at the source ME; re-target and re-send. A
			// concurrent same-identity worker may have consumed our
			// envelope in the meantime — the source ME refuses the re-send
			// then, and the migration is in fact complete.
			err = src.ME.Redirect(token, dest.MEAddress())
			if isMigrationDone(err) {
				unlock()
				return completedElsewhere()
			}
			if isEnvelopeConsumed(err) {
				// The destination handed our envelope to a restoring
				// library. The source's DONE flag says whether that
				// restore completed; without it the state died with a
				// failed restore, and re-sending is impossible (the
				// tombstone protects the completed-restore case).
				unlock()
				if doneNow, derr := lib.MigrationComplete(); derr == nil && doneNow {
					return completedElsewhere()
				}
				return finish(StatusFailed, fmt.Errorf("fleet: envelope consumed at %s without restore confirmation; not re-sending: %v", dest.ID(), err))
			}
		}
		if err != nil && isAlreadyPending(err) {
			// A deliverable same-identity envelope already sits at this
			// live destination — possibly ours, from an earlier transfer
			// whose ack was lost. Restore it; MigrationComplete then tells
			// us whether it was ours.
			_, lerr := dest.LaunchApp(app.Image(), core.NewMemoryStorage(), core.InitMigrated)
			unlock()
			if lerr != nil {
				return finish(StatusFailed, fmt.Errorf("%w: %v", ErrRestoreOnLiveDestination, lerr))
			}
			if done, derr := lib.MigrationComplete(); derr == nil && done {
				return complete()
			}
			// The restored envelope belonged to a same-identity sibling;
			// our data is still parked at the source ME. Stop here rather
			// than risk racing the sibling's own worker — a later plan
			// resumes this migration through its token.
			return finish(StatusFailed, ErrIdentityBusy)
		}
		if err != nil {
			unlock()
			lastErr = err
			o.emit(Event{Type: EventRetry, App: entry.App, Source: entry.Source, Dest: dest.ID(), Attempt: attempt, Err: err})
			continue
		}
		o.emit(Event{Type: EventDelivered, App: entry.App, Source: entry.Source, Dest: dest.ID(), Attempt: attempt})

		_, err = dest.LaunchApp(app.Image(), core.NewMemoryStorage(), core.InitMigrated)
		unlock()
		if err == nil {
			return complete()
		}
		if dest.ME.Enclave().Alive() {
			return finish(StatusFailed, fmt.Errorf("%w: %v", ErrRestoreOnLiveDestination, err))
		}
		// The destination machine restarted after accepting the data: the
		// envelope died with the ME's enclave memory, and the source still
		// holds its copy (no DONE arrived), so re-sending cannot fork.
		lastErr = err
		o.emit(Event{Type: EventRetry, App: entry.App, Source: entry.Source, Dest: dest.ID(), Attempt: attempt, Err: err})
	}
	return finish(StatusFailed, fmt.Errorf("%w after %d attempts: %v", ErrAttemptsExhausted, entry.Attempts, lastErr))
}
