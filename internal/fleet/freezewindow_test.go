package fleet_test

import (
	"context"
	"testing"
	"time"

	"repro/internal/cloud"
	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/obs/analyze"
	"repro/internal/sim"
)

// drainFreezeWindows drains n apps A→B at the given batch size under a
// scaled paper-latency model and returns the unavail.freeze.window
// histogram derived from the traces.
func drainFreezeWindows(t *testing.T, n, batchSize int) obs.HistogramSnapshot {
	t.Helper()
	dc, err := cloud.NewDataCenter("dc", sim.NewLatency(0.01))
	if err != nil {
		t.Fatal(err)
	}
	observer := obs.NewObserver()
	dc.SetObserver(observer)
	a, _ := dc.AddMachine("A")
	dc.AddMachine("B")
	launchApps(t, a, n)

	orch := fleet.New(dc, fleet.Config{Workers: 8, BatchSize: batchSize, Obs: observer})
	report, err := orch.Execute(context.Background(), fleet.Drain("A"))
	if err != nil {
		t.Fatal(err)
	}
	if report.Completed != n || report.Failed != 0 {
		t.Fatalf("batchSize %d: %+v", batchSize, report)
	}
	analyze.NewLedger().Update(observer)
	h := observer.Metrics.Snapshot().Histograms["unavail.freeze.window"]
	if h.Count != int64(n) {
		t.Fatalf("batchSize %d: %d freeze windows, want %d", batchSize, h.Count, n)
	}
	return h
}

// TestFreezeWindowIndependentOfBatchSize is the batching acceptance
// check for availability: members of a 64-wide batch are frozen only
// just before their chunks enter the stream, so the per-enclave
// unavailability window must stay in the same band as the classic
// one-at-a-time path, not grow with the batch.
func TestFreezeWindowIndependentOfBatchSize(t *testing.T) {
	const n = 64
	classic := drainFreezeWindows(t, n, 1)
	batched := drainFreezeWindows(t, n, n)

	// Generous statistical slack: the claim is "does not scale with the
	// batch" (a serialize-then-send design would be ~64× worse), not
	// "identical to the nanosecond".
	slack := 3*classic.Mean + 2*time.Millisecond
	if batched.Mean > slack {
		t.Fatalf("freeze window grew with batch size: batched mean %v vs classic mean %v",
			batched.Mean, classic.Mean)
	}
}
