package fleet

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/wirec"
)

// Journal snapshot wire format: the tagged, versioned binary codec
// (internal/core/wire.go conventions, shared wirec primitives) for
// persisting a journal outside the orchestrator's memory. This is the
// first step of the ROADMAP "orchestrator resilience" item: a crashed or
// restarted orchestrator can reload the snapshot, see which migrations
// completed and which are parked at source Migration Enclaves, and
// resume the unfinished ones (their libraries' tokens survive at the
// MEs; see TestJournalSnapshotResume).

// ErrJournalFormat reports malformed journal snapshot bytes.
var ErrJournalFormat = errors.New("fleet: malformed journal snapshot")

// Wire type tag (0xD* block: fleet).
const tagJournal byte = 0xD1

// journalWireVersion is bumped on any snapshot layout change so stale
// snapshots are rejected cleanly instead of misparsed. Version 2 added
// the per-entry counter count and traversed WAN link.
const journalWireVersion byte = 2

// maxJournalEntries bounds a decoded snapshot against length-prefix
// bombs; a million entries is far beyond any single plan.
const maxJournalEntries = 1 << 20

// Entry status flags byte.
const (
	flagSourceFrozen  byte = 1 << 0
	flagDoneConfirmed byte = 1 << 1
	flagRecovered     byte = 1 << 2
)

// Encode serializes the journal for untrusted storage.
func (j *Journal) Encode() ([]byte, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := wirec.AppendHeader(make([]byte, 0, 2+4+len(j.entries)*64), tagJournal, journalWireVersion)
	out = wirec.AppendU32(out, uint32(len(j.entries)))
	for i := range j.entries {
		e := &j.entries[i]
		out = wirec.AppendString(out, e.App)
		out = wirec.AppendString(out, e.Source)
		out = wirec.AppendString(out, e.PlannedDest)
		out = wirec.AppendString(out, e.Dest)
		out = wirec.AppendString(out, e.Link)
		out = wirec.AppendU32(out, uint32(e.Attempts))
		out = wirec.AppendU32(out, uint32(e.Redirects))
		out = wirec.AppendU32(out, uint32(e.StateBytes))
		out = wirec.AppendU32(out, uint32(e.Counters))
		out = wirec.AppendU64(out, uint64(e.Latency))
		var flags byte
		if e.SourceFrozen {
			flags |= flagSourceFrozen
		}
		if e.DoneConfirmed {
			flags |= flagDoneConfirmed
		}
		if e.Recovered {
			flags |= flagRecovered
		}
		out = append(out, flags, byte(e.Status))
		out = wirec.AppendString(out, e.Err)
	}
	return out, nil
}

// DecodeJournal parses a journal snapshot.
func DecodeJournal(raw []byte) (*Journal, error) {
	rd := wirec.NewReader(raw)
	if !rd.Header(tagJournal, journalWireVersion) {
		return nil, fmt.Errorf("%w: %v", ErrJournalFormat, rd.Err())
	}
	n := rd.U32()
	if n > maxJournalEntries {
		return nil, fmt.Errorf("%w: snapshot claims %d entries", ErrJournalFormat, n)
	}
	j := NewJournal()
	if rd.Err() == nil && n > 0 {
		// An entry is at least six length prefixes, four u32s, one u64,
		// and two flag bytes; the bytes come from untrusted storage.
		const minEntrySize = 6*4 + 4*4 + 8 + 2
		if !rd.CanHold(n, minEntrySize) {
			return nil, fmt.Errorf("%w: snapshot claims %d entries in %d bytes", ErrJournalFormat, n, rd.Remaining())
		}
		j.entries = make([]Entry, 0, n)
	}
	for i := uint32(0); i < n; i++ {
		var e Entry
		e.App = rd.String()
		e.Source = rd.String()
		e.PlannedDest = rd.String()
		e.Dest = rd.String()
		e.Link = rd.String()
		e.Attempts = int(rd.U32())
		e.Redirects = int(rd.U32())
		e.StateBytes = int(rd.U32())
		e.Counters = int(rd.U32())
		e.Latency = time.Duration(rd.U64())
		flags := rd.U8()
		e.SourceFrozen = flags&flagSourceFrozen != 0
		e.DoneConfirmed = flags&flagDoneConfirmed != 0
		e.Recovered = flags&flagRecovered != 0
		e.Status = Status(rd.U8())
		e.Err = rd.String()
		if rd.Err() != nil {
			break
		}
		if e.Status < StatusCompleted || e.Status > StatusCanceled {
			return nil, fmt.Errorf("%w: unknown status %d", ErrJournalFormat, e.Status)
		}
		if e.Latency < 0 || flags&^(flagSourceFrozen|flagDoneConfirmed|flagRecovered) != 0 {
			return nil, fmt.Errorf("%w: invalid entry encoding", ErrJournalFormat)
		}
		j.entries = append(j.entries, e)
	}
	if err := rd.Done(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrJournalFormat, err)
	}
	return j, nil
}

// ByStatus returns copies of the entries with the given status (e.g. the
// failed migrations a resumed orchestrator needs to finish).
func (j *Journal) ByStatus(st Status) []Entry {
	j.mu.Lock()
	defer j.mu.Unlock()
	var out []Entry
	for _, e := range j.entries {
		if e.Status == st {
			out = append(out, e)
		}
	}
	return out
}
