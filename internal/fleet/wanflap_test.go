package fleet_test

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/cloud"
	"repro/internal/federation"
	"repro/internal/fleet"
	"repro/internal/sim"
	"repro/internal/transport"
)

// TestBatchDrainWANFlapParksAndResumes kills the WAN link in the middle
// of a batched cross-DC drain: members whose delivery was never
// acknowledged must park (frozen at the source, data held by the source
// ME, resumable by token), a later ResumeParked must land every one of
// them exactly once, and no enclave may ever run twice.
func TestBatchDrainWANFlapParksAndResumes(t *testing.T) {
	fed := federation.New("flap")
	dcA, err := cloud.NewDataCenter("flap-a", sim.NewInstantLatency())
	if err != nil {
		t.Fatal(err)
	}
	dcB, err := cloud.NewDataCenter("flap-b", sim.NewInstantLatency())
	if err != nil {
		t.Fatal(err)
	}
	a1, _ := dcA.AddMachine("a1")
	dcA.AddMachine("a2") // ResumeParked needs a local candidate to plan with
	b1, _ := dcB.AddMachine("b1")
	if err := fed.Admit(dcA); err != nil {
		t.Fatal(err)
	}
	if err := fed.Admit(dcB); err != nil {
		t.Fatal(err)
	}
	link, err := fed.Connect("flap-a", "flap-b", transport.WANConfig{
		RTT:       10 * time.Millisecond,
		Bandwidth: 1 << 30,
		Scale:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fed.Close()

	const n = 16
	states := launchApps(t, a1, n)

	// One batch, one chunk in flight at a time, roughly one record per
	// chunk: acks arrive one by one, so downing the link on the first
	// delivery deterministically strands later members un-acknowledged.
	var flap sync.Once
	cfg := fleet.Config{
		Workers:         2,
		BatchSize:       n,
		BatchWindow:     1,
		BatchChunkBytes: 600,
		MaxAttempts:     1,
		OnEvent: func(e fleet.Event) {
			if e.Type == fleet.EventDelivered {
				flap.Do(func() { link.SetDown(true) })
			}
		},
	}
	orch := fleet.New(dcA, cfg)
	plan := fleet.Plan{
		Intent:        fleet.IntentEvacuate,
		Sources:       []string{"a1"},
		RemoteTargets: []fleet.RemoteTarget{{Machine: b1, Link: link.Name()}},
	}
	report, err := orch.Execute(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if report.Completed+report.Failed != n {
		t.Fatalf("report does not account for every member: %+v", report)
	}
	if report.Failed == 0 {
		t.Fatal("WAN flap stranded no members; flap landed too late to test parking")
	}
	// Every stranded member must be parked, not lost: frozen at the
	// source with a resume token the source ME still honors.
	parked := 0
	for _, app := range a1.Apps() {
		if app.Library.Frozen() && app.Library.MigrationToken() != nil {
			parked++
		}
	}
	if parked != report.Failed {
		t.Fatalf("parked %d apps, want %d (every failed member)", parked, report.Failed)
	}

	// Link restored: the same orchestrator resumes every parked member.
	// The held data re-streams to the originally targeted machine.
	link.SetDown(false)
	resume, err := orch.ResumeParked(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if resume.Completed != report.Failed || resume.Failed != 0 {
		t.Fatalf("resume: %+v, want %d completed", resume, report.Failed)
	}

	// No double-resume: a second pass finds nothing parked.
	again, err := orch.ResumeParked(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if again.Completed+again.Failed != 0 {
		t.Fatalf("second ResumeParked found work: %+v", again)
	}

	// Exactly one live copy of every enclave, all on the WAN target.
	if got := a1.AppCount(); got != 0 {
		t.Fatalf("a1 still hosts %d apps", got)
	}
	if got := b1.AppCount(); got != n {
		t.Fatalf("b1 hosts %d apps, want %d", got, n)
	}
	verifySurvival(t, states, []*cloud.Machine{b1})
}
