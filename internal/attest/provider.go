package attest

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/xcrypto"
)

// Provider authentication errors.
var (
	ErrProviderAuth = errors.New("attest: provider authentication failed")
)

// providerRole is the certificate role for Migration Enclave credentials
// provisioned during the secure setup phase (paper §V-B).
const providerRole = "migration-enclave"

// Provider is the cloud/data-center operator that provisions Migration
// Enclaves with credentials, limiting migration to authorized machines
// within the same provider (requirement R2).
type Provider struct {
	authority *xcrypto.Authority
}

// NewProvider creates a cloud provider identity.
func NewProvider(name string) (*Provider, error) {
	a, err := xcrypto.NewAuthority(name)
	if err != nil {
		return nil, fmt.Errorf("provider authority: %w", err)
	}
	return &Provider{authority: a}, nil
}

// Name returns the provider's name.
func (p *Provider) Name() string { return p.authority.Name() }

// Authority exposes the underlying certificate authority (for tests that
// build custom trust topologies).
func (p *Provider) Authority() *xcrypto.Authority { return p.authority }

// ProvisionME runs the setup-phase step for one machine: it issues a
// certified signing credential to that machine's Migration Enclave.
func (p *Provider) ProvisionME(machineName string) (*Credential, error) {
	signer, err := xcrypto.NewCertifiedSigner(
		p.authority, machineName+"/migration-enclave", providerRole, 365*24*time.Hour)
	if err != nil {
		return nil, fmt.Errorf("provision ME: %w", err)
	}
	return &Credential{signer: signer, verifier: xcrypto.NewVerifier(p.authority)}, nil
}

// Revoke removes a machine's Migration Enclave from the provider's trust.
func (p *Provider) Revoke(machineName string) {
	p.authority.Revoke(machineName + "/migration-enclave")
}

// Credential is a Migration Enclave's provider-issued identity: a signing
// key plus the trust anchor for verifying peer credentials.
type Credential struct {
	signer   *xcrypto.Signer
	verifier *xcrypto.Verifier
}

// Certificate returns the credential's certificate for transmission.
func (c *Credential) Certificate() *xcrypto.Certificate { return c.signer.Cert }

// Sign signs an attestation transcript with the provider-issued key.
func (c *Credential) Sign(transcript []byte) []byte { return c.signer.Sign(transcript) }

// VerifyPeer checks that a peer's certificate chains to the same provider
// with the Migration Enclave role, and that sig is the peer's signature
// over transcript. This is the "exchange signatures on the transcript of
// the attestation protocol" step of §V-B.
func (c *Credential) VerifyPeer(cert *xcrypto.Certificate, transcript, sig []byte) error {
	if cert == nil {
		return fmt.Errorf("%w: missing certificate", ErrProviderAuth)
	}
	if err := c.verifier.Verify(cert); err != nil {
		return fmt.Errorf("%w: %v", ErrProviderAuth, err)
	}
	if cert.Role != providerRole {
		return fmt.Errorf("%w: unexpected role %q", ErrProviderAuth, cert.Role)
	}
	if err := xcrypto.VerifyWithCert(cert, transcript, sig); err != nil {
		return fmt.Errorf("%w: %v", ErrProviderAuth, err)
	}
	return nil
}
