package attest

import (
	"crypto/ed25519"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/xcrypto"
)

// Provider authentication errors.
var (
	ErrProviderAuth = errors.New("attest: provider authentication failed")
	// ErrNotFederated reports a peer certificate issued by an authority
	// the provider holds no (valid) trust grant for: migration across
	// provider boundaries is refused unless the operator has explicitly
	// federated with that provider (and not revoked the grant since).
	// It wraps ErrProviderAuth — an unfederated peer is just one way
	// provider authentication fails.
	ErrNotFederated = fmt.Errorf("%w: peer provider is not federated", ErrProviderAuth)
	// ErrBadGrant reports a federation trust grant that does not verify:
	// not issued by this provider's authority, wrong scope role, expired,
	// or carrying a malformed authority key.
	ErrBadGrant = errors.New("attest: invalid federation trust grant")
)

// providerRole is the certificate role for Migration Enclave credentials
// provisioned during the secure setup phase (paper §V-B).
const providerRole = "migration-enclave"

// FederationRole is the certificate role of a cross-provider trust
// grant: provider A's authority signs the peer provider B's authority
// public key under this scope. The scoped role keeps the two trust
// domains separate — a grant lets A's Migration Enclaves accept peer ME
// certificates chaining to B, and nothing else: a grant certificate can
// never itself act as an ME credential (role mismatch), and an ME
// credential can never act as a grant.
const FederationRole = "federated-authority"

// Provider is the cloud/data-center operator that provisions Migration
// Enclaves with credentials, limiting migration to authorized machines
// within the same provider (requirement R2) — or, once the operator has
// installed a scoped trust grant for a peer provider, within the
// federation of the two (cross-datacenter migration). Grants are
// revocable per peer and re-verified on every handshake, so revocation
// takes effect immediately.
type Provider struct {
	authority *xcrypto.Authority
	// selfVerifier is the long-lived verifier over this provider's own
	// authority used to re-check grants per handshake: one instance, so
	// its memoized signature checks actually amortize.
	selfVerifier *xcrypto.Verifier

	mu sync.Mutex
	// grants maps a peer authority name to the installed trust grant for
	// it. VerifyPeer re-verifies the grant certificate against this
	// provider's own authority on every use, so expiry and revocation
	// (RevokeFederation) are enforced per handshake, not at install time.
	grants map[string]*xcrypto.Certificate
	// peerVerifiers memoizes the per-grant verifier built from the
	// granted authority key (signature checks inside are memoized too),
	// wired to the peer's online revocation feed when one was provided
	// at AcceptGrant.
	peerVerifiers map[string]*xcrypto.Verifier
}

// NewProvider creates a cloud provider identity.
func NewProvider(name string) (*Provider, error) {
	a, err := xcrypto.NewAuthority(name)
	if err != nil {
		return nil, fmt.Errorf("provider authority: %w", err)
	}
	return &Provider{
		authority:     a,
		selfVerifier:  xcrypto.NewVerifier(a),
		grants:        make(map[string]*xcrypto.Certificate),
		peerVerifiers: make(map[string]*xcrypto.Verifier),
	}, nil
}

// Name returns the provider's name.
func (p *Provider) Name() string { return p.authority.Name() }

// Authority exposes the underlying certificate authority (for tests that
// build custom trust topologies).
func (p *Provider) Authority() *xcrypto.Authority { return p.authority }

// ProvisionME runs the setup-phase step for one machine: it issues a
// certified signing credential to that machine's Migration Enclave.
func (p *Provider) ProvisionME(machineName string) (*Credential, error) {
	signer, err := xcrypto.NewCertifiedSigner(
		p.authority, machineName+"/migration-enclave", providerRole, 365*24*time.Hour)
	if err != nil {
		return nil, fmt.Errorf("provision ME: %w", err)
	}
	return &Credential{signer: signer, verifier: xcrypto.NewVerifier(p.authority), provider: p}, nil
}

// Revoke removes a machine's Migration Enclave from the provider's trust.
func (p *Provider) Revoke(machineName string) {
	p.authority.Revoke(machineName + "/migration-enclave")
}

// GrantFederation issues a scoped trust grant for a peer provider's
// authority: a certificate under THIS provider's authority whose subject
// is the peer authority's name and whose public key is the peer
// authority's verification key, with role FederationRole. Installing the
// grant (AcceptGrant) makes this provider's Migration Enclaves accept
// peer ME certificates chaining to that authority — and nothing more:
// the two trust domains stay distinct, each provider keeps issuing and
// revoking its own ME credentials, and the grant itself can be revoked
// per peer (RevokeFederation) at any time.
func (p *Provider) GrantFederation(peerName string, peerKey ed25519.PublicKey, ttl time.Duration) (*xcrypto.Certificate, error) {
	if len(peerKey) != ed25519.PublicKeySize {
		return nil, fmt.Errorf("%w: bad peer authority key", ErrBadGrant)
	}
	grant, err := p.authority.Issue(peerName, FederationRole, peerKey, ttl)
	if err != nil {
		return nil, fmt.Errorf("issue federation grant: %w", err)
	}
	return grant, nil
}

// AcceptGrant installs a federation trust grant previously issued by
// THIS provider (GrantFederation). The grant is verified at install time
// and re-verified on every peer handshake, so a grant that has expired
// or been revoked since stops working immediately.
//
// peerRevoked, when non-nil, is the peer authority's online revocation
// feed: with it, the peer operator's own per-machine ME revocations are
// honored here too (a revoked peer machine stops being a valid
// migration partner everywhere, not just at home). A nil feed accepts
// any unexpired peer certificate the granted key verifies — the offline
// trust model, in which only whole-federation revocation cuts a peer
// off.
func (p *Provider) AcceptGrant(grant *xcrypto.Certificate, peerRevoked func(subject string) bool) error {
	if err := p.checkGrant(grant); err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.grants[grant.Subject] = grant
	p.peerVerifiers[grant.Subject] = xcrypto.NewVerifierFromKeyFunc(
		grant.Subject, ed25519.PublicKey(grant.PublicKey), peerRevoked)
	return nil
}

// RevokeFederation withdraws the trust grant for a peer provider: the
// grant certificate is revoked at this provider's authority, so every
// subsequent VerifyPeer against that peer's MEs fails — scoped,
// per-peer, and immediate (grants are re-verified per handshake).
func (p *Provider) RevokeFederation(peerName string) {
	p.authority.Revoke(peerName)
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.grants, peerName)
	delete(p.peerVerifiers, peerName)
}

// checkGrant validates a grant certificate against this provider's own
// authority and the federation scope.
func (p *Provider) checkGrant(grant *xcrypto.Certificate) error {
	if grant == nil {
		return fmt.Errorf("%w: missing grant", ErrBadGrant)
	}
	if err := p.selfVerifier.Verify(grant); err != nil {
		return fmt.Errorf("%w: %v", ErrBadGrant, err)
	}
	if grant.Role != FederationRole {
		return fmt.Errorf("%w: unexpected scope role %q", ErrBadGrant, grant.Role)
	}
	if len(grant.PublicKey) != ed25519.PublicKeySize {
		return fmt.Errorf("%w: bad authority key", ErrBadGrant)
	}
	return nil
}

// verifyFederatedPeer checks a peer certificate that chains to a foreign
// authority: a valid, unrevoked, unexpired trust grant must exist for
// that authority, and the certificate must verify against the granted
// authority key with the Migration Enclave role.
func (p *Provider) verifyFederatedPeer(cert *xcrypto.Certificate) error {
	p.mu.Lock()
	grant, ok := p.grants[cert.Issuer]
	verifier := p.peerVerifiers[cert.Issuer]
	p.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: issuer %q", ErrNotFederated, cert.Issuer)
	}
	// Re-verify the grant on every use: expiry and RevokeFederation (or a
	// direct authority revocation of the peer name) must cut off a peer
	// mid-flight, not only at the next install.
	if err := p.checkGrant(grant); err != nil {
		return fmt.Errorf("%w: %v", ErrNotFederated, err)
	}
	if err := verifier.Verify(cert); err != nil {
		return fmt.Errorf("%w: %v", ErrProviderAuth, err)
	}
	return nil
}

// Credential is a Migration Enclave's provider-issued identity: a signing
// key plus the trust anchor for verifying peer credentials (and, through
// the provider's grant registry, federated peer authorities).
type Credential struct {
	signer   *xcrypto.Signer
	verifier *xcrypto.Verifier
	provider *Provider
}

// Certificate returns the credential's certificate for transmission.
func (c *Credential) Certificate() *xcrypto.Certificate { return c.signer.Cert }

// Sign signs an attestation transcript with the provider-issued key.
func (c *Credential) Sign(transcript []byte) []byte { return c.signer.Sign(transcript) }

// VerifyPeer checks that a peer's certificate chains to the same
// provider — or, with a valid trust grant installed, to a federated peer
// provider — with the Migration Enclave role, and that sig is the peer's
// signature over transcript. This is the "exchange signatures on the
// transcript of the attestation protocol" step of §V-B, extended with
// the federation's cross-certification: a foreign issuer is accepted
// exactly when the operator's scoped, revocable grant for it verifies.
func (c *Credential) VerifyPeer(cert *xcrypto.Certificate, transcript, sig []byte) error {
	if cert == nil {
		return fmt.Errorf("%w: missing certificate", ErrProviderAuth)
	}
	if c.provider != nil && cert.Issuer != c.provider.Name() {
		if err := c.provider.verifyFederatedPeer(cert); err != nil {
			return err
		}
	} else if err := c.verifier.Verify(cert); err != nil {
		return fmt.Errorf("%w: %v", ErrProviderAuth, err)
	}
	if cert.Role != providerRole {
		return fmt.Errorf("%w: unexpected role %q", ErrProviderAuth, cert.Role)
	}
	if err := xcrypto.VerifyWithCert(cert, transcript, sig); err != nil {
		return fmt.Errorf("%w: %v", ErrProviderAuth, err)
	}
	return nil
}
