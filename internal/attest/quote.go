package attest

import (
	"bytes"
	"crypto/ed25519"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/sgx"
	"repro/internal/sim"
	"repro/internal/xcrypto"
)

// Quote and IAS errors.
var (
	ErrQuoteSignature = errors.New("attest: quote signature invalid")
	ErrQuotePlatform  = errors.New("attest: quote platform credential invalid")
	ErrQuoteFormat    = errors.New("attest: malformed quote")
)

// epidGroupRole is the certificate role for simulated EPID member keys.
const epidGroupRole = "epid-member"

// Quote is the Quoting Enclave's output: the prover's identities and
// report data, signed by the platform's EPID-sim member key, verifiable
// via the group issuer's public key held by the IAS.
type Quote struct {
	MREnclave    sgx.Measurement
	MRSigner     sgx.Measurement
	Data         sgx.ReportData
	PlatformCert *xcrypto.Certificate
	Signature    []byte
}

// signedBytes is the canonical byte string covered by the quote signature.
func (q *Quote) signedBytes() []byte {
	var buf bytes.Buffer
	buf.WriteString("SGX-QUOTE")
	buf.Write(q.MREnclave[:])
	buf.Write(q.MRSigner[:])
	buf.Write(q.Data[:])
	return buf.Bytes()
}

// QuotingEnclave is the per-machine architectural enclave that converts
// local reports into remotely verifiable quotes. Its member key is
// certified by the EPID group issuer during platform provisioning.
type QuotingEnclave struct {
	enclave *sgx.Enclave
	member  *xcrypto.Signer
}

// QuotingEnclaveImage returns the architectural enclave image for the QE.
// All QEs share this image, so they measure identically everywhere.
func QuotingEnclaveImage() *sgx.Image {
	return &sgx.Image{
		Name:            "intel-quoting-enclave",
		Version:         1,
		Code:            []byte("architectural: quoting enclave"),
		SignerPublicKey: architecturalSignerKey(),
	}
}

// ArchitecturalSignerKey is the fixed "Intel" signing key used by
// architectural enclave images in the simulation (Quoting Enclave,
// Platform Services Enclave, Migration Enclave base image).
func ArchitecturalSignerKey() []byte {
	key := xcrypto.DeriveKey([]byte("intel-architectural-signer"), "ed25519-pub")
	return key[:]
}

func architecturalSignerKey() []byte { return ArchitecturalSignerKey() }

// NewQuotingEnclave loads a QE on the machine and provisions its EPID-sim
// membership from the group issuer.
func NewQuotingEnclave(m *sgx.Machine, groupIssuer *xcrypto.Authority) (*QuotingEnclave, error) {
	e, err := m.Load(QuotingEnclaveImage())
	if err != nil {
		return nil, fmt.Errorf("load QE: %w", err)
	}
	member, err := xcrypto.NewCertifiedSigner(
		groupIssuer, string(m.ID())+"/qe", epidGroupRole, 365*24*time.Hour)
	if err != nil {
		return nil, fmt.Errorf("provision QE: %w", err)
	}
	return &QuotingEnclave{enclave: e, member: member}, nil
}

// Quote locally attests the prover and signs a quote over its identity
// and report data. The prover must be on the same machine as the QE;
// cross-machine requests fail, exactly as on real hardware.
func (qe *QuotingEnclave) Quote(prover *sgx.Enclave, data sgx.ReportData) (*Quote, error) {
	report, err := prover.CreateReport(sgx.TargetFor(qe.enclave), data)
	if err != nil {
		return nil, fmt.Errorf("prover report: %w", err)
	}
	if err := qe.enclave.VerifyReport(report); err != nil {
		return nil, fmt.Errorf("QE verify report: %w", err)
	}
	qe.enclave.Machine().Latency().Charge(sim.OpQuote)
	q := &Quote{
		MREnclave:    report.MREnclave,
		MRSigner:     report.MRSigner,
		Data:         report.Data,
		PlatformCert: qe.member.Cert,
	}
	q.Signature = qe.member.Sign(q.signedBytes())
	return q, nil
}

// IAS models the Intel Attestation Service: it holds the EPID group
// issuer's public key and verifies quote signatures and platform
// membership, including revocation of compromised platforms.
//
// The real IAS is one global Intel service that knows every provisioned
// EPID group; the simulation builds one IAS per data center, so
// federation registers the peer site's group issuer here (TrustIssuer) —
// modeling both groups being provisioned with the same global service,
// the "share a provider/IAS" half of the ROADMAP's cross-DC item.
type IAS struct {
	issuer   string
	verifier *xcrypto.Verifier
	lat      *sim.Latency

	mu    sync.Mutex
	extra map[string]*xcrypto.Verifier
}

// NewIAS builds the verification service for a group issuer.
func NewIAS(groupIssuer *xcrypto.Authority, lat *sim.Latency) *IAS {
	return &IAS{
		issuer:   groupIssuer.Name(),
		verifier: xcrypto.NewVerifier(groupIssuer),
		lat:      lat,
		extra:    make(map[string]*xcrypto.Verifier),
	}
}

// TrustIssuer registers an additional EPID group issuer (a federated
// site's group) whose platform credentials this IAS instance accepts.
// revoked, when non-nil, is the issuer's online revocation feed, so the
// peer site's platform revocations are honored here too.
func (ias *IAS) TrustIssuer(name string, pub ed25519.PublicKey, revoked func(subject string) bool) {
	ias.mu.Lock()
	defer ias.mu.Unlock()
	ias.extra[name] = xcrypto.NewVerifierFromKeyFunc(name, pub, revoked)
}

// DistrustIssuer withdraws a previously trusted federated group issuer.
func (ias *IAS) DistrustIssuer(name string) {
	ias.mu.Lock()
	defer ias.mu.Unlock()
	delete(ias.extra, name)
}

// Verify checks a quote end to end: platform credential chain, role, and
// quote signature. A nil or malformed quote is rejected.
func (ias *IAS) Verify(q *Quote) error {
	ias.lat.Charge(sim.OpIASVerify)
	if q == nil || q.PlatformCert == nil {
		return ErrQuoteFormat
	}
	verifier := ias.verifier
	if q.PlatformCert.Issuer != ias.issuer {
		ias.mu.Lock()
		verifier = ias.extra[q.PlatformCert.Issuer]
		ias.mu.Unlock()
		if verifier == nil {
			return fmt.Errorf("%w: unknown group issuer %q", ErrQuotePlatform, q.PlatformCert.Issuer)
		}
	}
	if err := verifier.Verify(q.PlatformCert); err != nil {
		return fmt.Errorf("%w: %v", ErrQuotePlatform, err)
	}
	if q.PlatformCert.Role != epidGroupRole {
		return fmt.Errorf("%w: role %q", ErrQuotePlatform, q.PlatformCert.Role)
	}
	if err := xcrypto.VerifyWithCert(q.PlatformCert, q.signedBytes(), q.Signature); err != nil {
		return fmt.Errorf("%w: %v", ErrQuoteSignature, err)
	}
	return nil
}
