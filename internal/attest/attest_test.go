package attest

import (
	"crypto/ed25519"
	"crypto/rand"
	"errors"
	"testing"

	"repro/internal/sgx"
	"repro/internal/sim"
	"repro/internal/xcrypto"
)

func newMachine(t *testing.T, id sgx.MachineID) *sgx.Machine {
	t.Helper()
	m, err := sgx.NewMachine(id, sim.NewInstantLatency())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func loadEnclave(t *testing.T, m *sgx.Machine, name string) *sgx.Enclave {
	t.Helper()
	pub, _, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	e, err := m.Load(&sgx.Image{Name: name, Code: []byte(name), SignerPublicKey: pub})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestLocalAttestEstablishesChannel(t *testing.T) {
	m := newMachine(t, "A")
	app := loadEnclave(t, m, "app")
	me := loadEnclave(t, m, "migration-enclave")

	sessApp, sessME, err := LocalAttest(app, me)
	if err != nil {
		t.Fatal(err)
	}
	if sessApp.PeerMREnclave != me.MREnclave() {
		t.Fatal("initiator learned wrong peer identity")
	}
	if sessME.PeerMREnclave != app.MREnclave() {
		t.Fatal("responder learned wrong peer identity")
	}
	wire, err := sessApp.Channel.Seal([]byte("migration data"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := sessME.Channel.Open(wire)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "migration data" {
		t.Fatal("channel payload mismatch")
	}
	// And the reverse direction.
	back, err := sessME.Channel.Seal([]byte("ack"))
	if err != nil {
		t.Fatal(err)
	}
	if msg, err := sessApp.Channel.Open(back); err != nil || string(msg) != "ack" {
		t.Fatalf("reverse direction: %v %q", err, msg)
	}
}

func TestLocalAttestFailsAcrossMachines(t *testing.T) {
	mA := newMachine(t, "A")
	mB := newMachine(t, "B")
	app := loadEnclave(t, mA, "app")
	me := loadEnclave(t, mB, "me")
	if _, _, err := LocalAttest(app, me); !errors.Is(err, ErrLocalAttest) {
		t.Fatalf("cross-machine local attest: got %v", err)
	}
}

func TestLocalAttestFailsForDestroyedEnclave(t *testing.T) {
	m := newMachine(t, "A")
	app := loadEnclave(t, m, "app")
	me := loadEnclave(t, m, "me")
	m.Destroy(app)
	if _, _, err := LocalAttest(app, me); err == nil {
		t.Fatal("dead initiator attested")
	}
	app2 := loadEnclave(t, m, "app2")
	m.Destroy(me)
	if _, _, err := LocalAttest(app2, me); err == nil {
		t.Fatal("dead responder attested")
	}
}

func TestQuoteVerifiesThroughIAS(t *testing.T) {
	issuer, err := xcrypto.NewAuthority("intel-epid-group")
	if err != nil {
		t.Fatal(err)
	}
	m := newMachine(t, "A")
	qe, err := NewQuotingEnclave(m, issuer)
	if err != nil {
		t.Fatal(err)
	}
	ias := NewIAS(issuer, m.Latency())
	prover := loadEnclave(t, m, "app")

	data := sgx.MakeReportData([]byte("dh-key"))
	q, err := qe.Quote(prover, data)
	if err != nil {
		t.Fatal(err)
	}
	if err := ias.Verify(q); err != nil {
		t.Fatalf("verify: %v", err)
	}
	if q.MREnclave != prover.MREnclave() || q.Data != data {
		t.Fatal("quote carries wrong identity or data")
	}
}

func TestQuoteRejectedForCrossMachineProver(t *testing.T) {
	issuer, _ := xcrypto.NewAuthority("grp")
	mA := newMachine(t, "A")
	mB := newMachine(t, "B")
	qe, err := NewQuotingEnclave(mA, issuer)
	if err != nil {
		t.Fatal(err)
	}
	prover := loadEnclave(t, mB, "app")
	if _, err := qe.Quote(prover, sgx.ReportData{}); err == nil {
		t.Fatal("QE quoted an enclave on another machine")
	}
}

func TestIASRejectsTamperedQuote(t *testing.T) {
	issuer, _ := xcrypto.NewAuthority("grp")
	m := newMachine(t, "A")
	qe, _ := NewQuotingEnclave(m, issuer)
	ias := NewIAS(issuer, m.Latency())
	prover := loadEnclave(t, m, "app")
	q, _ := qe.Quote(prover, sgx.ReportData{})

	t.Run("identity swap", func(t *testing.T) {
		bad := *q
		bad.MREnclave[0] ^= 1
		if err := ias.Verify(&bad); !errors.Is(err, ErrQuoteSignature) {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("data swap", func(t *testing.T) {
		bad := *q
		bad.Data[0] ^= 1
		if err := ias.Verify(&bad); !errors.Is(err, ErrQuoteSignature) {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("nil quote", func(t *testing.T) {
		if err := ias.Verify(nil); !errors.Is(err, ErrQuoteFormat) {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("foreign group", func(t *testing.T) {
		other, _ := xcrypto.NewAuthority("other-grp")
		otherIAS := NewIAS(other, m.Latency())
		if err := otherIAS.Verify(q); !errors.Is(err, ErrQuotePlatform) {
			t.Fatalf("got %v", err)
		}
	})
}

func TestIASRevokedPlatform(t *testing.T) {
	issuer, _ := xcrypto.NewAuthority("grp")
	m := newMachine(t, "A")
	qe, _ := NewQuotingEnclave(m, issuer)
	ias := NewIAS(issuer, m.Latency())
	prover := loadEnclave(t, m, "app")
	q, _ := qe.Quote(prover, sgx.ReportData{})
	issuer.Revoke("A/qe")
	if err := ias.Verify(q); !errors.Is(err, ErrQuotePlatform) {
		t.Fatalf("revoked platform quote accepted: %v", err)
	}
}

func TestProviderMutualAuthentication(t *testing.T) {
	provider, err := NewProvider("dc-hel-1")
	if err != nil {
		t.Fatal(err)
	}
	credA, err := provider.ProvisionME("machine-A")
	if err != nil {
		t.Fatal(err)
	}
	credB, err := provider.ProvisionME("machine-B")
	if err != nil {
		t.Fatal(err)
	}
	transcript := []byte("attestation transcript hash")
	sigB := credB.Sign(transcript)
	if err := credA.VerifyPeer(credB.Certificate(), transcript, sigB); err != nil {
		t.Fatalf("same-provider peer rejected: %v", err)
	}
}

func TestProviderRejectsForeignME(t *testing.T) {
	ours, _ := NewProvider("dc-ours")
	theirs, _ := NewProvider("dc-theirs")
	credOurs, _ := ours.ProvisionME("machine-A")
	credTheirs, _ := theirs.ProvisionME("machine-X")

	transcript := []byte("t")
	sig := credTheirs.Sign(transcript)
	if err := credOurs.VerifyPeer(credTheirs.Certificate(), transcript, sig); !errors.Is(err, ErrProviderAuth) {
		t.Fatalf("foreign provider accepted: %v", err)
	}
}

func TestProviderRejectsRevokedAndForgedSignatures(t *testing.T) {
	provider, _ := NewProvider("dc")
	credA, _ := provider.ProvisionME("machine-A")
	credB, _ := provider.ProvisionME("machine-B")

	t.Run("revoked peer", func(t *testing.T) {
		provider.Revoke("machine-B")
		sig := credB.Sign([]byte("t"))
		if err := credA.VerifyPeer(credB.Certificate(), []byte("t"), sig); !errors.Is(err, ErrProviderAuth) {
			t.Fatalf("revoked ME accepted: %v", err)
		}
	})
	t.Run("wrong transcript", func(t *testing.T) {
		credC, _ := provider.ProvisionME("machine-C")
		sig := credC.Sign([]byte("transcript-1"))
		if err := credA.VerifyPeer(credC.Certificate(), []byte("transcript-2"), sig); !errors.Is(err, ErrProviderAuth) {
			t.Fatalf("signature over wrong transcript accepted: %v", err)
		}
	})
	t.Run("nil cert", func(t *testing.T) {
		if err := credA.VerifyPeer(nil, []byte("t"), nil); !errors.Is(err, ErrProviderAuth) {
			t.Fatalf("nil cert accepted: %v", err)
		}
	})
}
