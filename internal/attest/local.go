// Package attest implements SGX attestation over the simulated hardware:
//
//   - Local attestation (paper §II-A6): an enclave proves its identity to
//     another enclave on the same machine via an EREPORT MACed with the
//     verifier's report key. Mutual local attestation with embedded
//     Diffie-Hellman key-agreement messages yields an encrypted channel
//     between the two enclaves.
//   - Remote attestation: the Quoting Enclave turns a local report into a
//     quote signed under a simulated EPID group signature (a per-platform
//     member key certified by the group issuer), verifiable through the
//     Intel Attestation Service (IAS).
//   - Provider credentials: the data-center operator provisions each
//     Migration Enclave with a certified signing key during the secure
//     setup phase, so Migration Enclaves can verify they belong to the
//     same cloud provider (requirement R2).
package attest

import (
	"errors"
	"fmt"

	"repro/internal/sgx"
	"repro/internal/xcrypto"
)

// Attestation errors.
var (
	ErrLocalAttest   = errors.New("attest: local attestation failed")
	ErrReportBinding = errors.New("attest: report data does not bind handshake keys")
)

// LocalSession is one endpoint's view of a mutually attested channel
// between two enclaves on the same machine.
type LocalSession struct {
	// Channel is the encrypted, replay-protected channel to the peer.
	Channel *xcrypto.Channel
	// PeerMREnclave is the attested identity of the peer enclave. The
	// Migration Enclave stores this value to match migration data to
	// recipients (paper §VI-A).
	PeerMREnclave sgx.Measurement
	// PeerMRSigner is the attested signing identity of the peer.
	PeerMRSigner sgx.Measurement
}

// LocalAttest performs mutual local attestation with embedded DH key
// agreement between two enclaves on the same machine and returns both
// endpoints' sessions. It fails if either enclave is destroyed, if the
// enclaves are on different machines, or if either report fails to verify.
//
// Handshake (both messages cross the untrusted OS, which may tamper —
// tampering is caught by the report MACs and the report-data binding):
//
//	A -> B: reportA(target=B, data=H(dhA))
//	B -> A: reportB(target=A, data=H(dhA || dhB))
func LocalAttest(initiator, responder *sgx.Enclave) (*LocalSession, *LocalSession, error) {
	dhA, err := xcrypto.NewKeyExchange()
	if err != nil {
		return nil, nil, fmt.Errorf("initiator dh: %w", err)
	}
	dhB, err := xcrypto.NewKeyExchange()
	if err != nil {
		return nil, nil, fmt.Errorf("responder dh: %w", err)
	}
	pubA, pubB := dhA.PublicBytes(), dhB.PublicBytes()

	// A's report binds its DH key; addressed to B.
	repA, err := initiator.CreateReport(sgx.TargetFor(responder), sgx.MakeReportData(pubA))
	if err != nil {
		return nil, nil, fmt.Errorf("%w: initiator report: %v", ErrLocalAttest, err)
	}
	// B verifies A's report and the key binding.
	if err := responder.VerifyReport(repA); err != nil {
		return nil, nil, fmt.Errorf("%w: verify initiator: %v", ErrLocalAttest, err)
	}
	if repA.Data != sgx.MakeReportData(pubA) {
		return nil, nil, ErrReportBinding
	}
	// B's report binds the whole transcript; addressed to A.
	repB, err := responder.CreateReport(sgx.TargetFor(initiator), sgx.MakeReportData(pubA, pubB))
	if err != nil {
		return nil, nil, fmt.Errorf("%w: responder report: %v", ErrLocalAttest, err)
	}
	if err := initiator.VerifyReport(repB); err != nil {
		return nil, nil, fmt.Errorf("%w: verify responder: %v", ErrLocalAttest, err)
	}
	if repB.Data != sgx.MakeReportData(pubA, pubB) {
		return nil, nil, ErrReportBinding
	}

	// ECDH is symmetric: dhA.Shared(pubB) and dhB.Shared(pubA) are the
	// same secret by construction, and both key pairs were generated
	// locally above, so the simulation computes the scalar multiplication
	// once instead of once per endpoint.
	secret, err := dhA.Shared(pubB)
	if err != nil {
		return nil, nil, fmt.Errorf("shared secret: %w", err)
	}

	transcript := xcrypto.Transcript("local-attest", pubA, pubB)
	chanA, chanB := xcrypto.ChannelPair(secret, transcript)

	sessA := &LocalSession{
		Channel:       chanA,
		PeerMREnclave: repB.MREnclave,
		PeerMRSigner:  repB.MRSigner,
	}
	sessB := &LocalSession{
		Channel:       chanB,
		PeerMREnclave: repA.MREnclave,
		PeerMRSigner:  repA.MRSigner,
	}
	return sessA, sessB, nil
}
