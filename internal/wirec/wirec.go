// Package wirec provides the shared primitives of the repository's tagged
// binary wire codec (the internal/core/wire.go format): every encoded
// value starts with a one-byte type tag and a one-byte format version,
// variable-length fields carry a u32 length prefix, and fixed-width words
// are big-endian. Packages with their own wire structures (pserepl's
// replication messages, fleet's journal snapshots) build their codecs on
// these helpers so the framing conventions — and the defenses against
// length-prefix bombs from untrusted bytes — stay uniform.
package wirec

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrFormat reports malformed wire bytes. Package codecs wrap it with
// their own context.
var ErrFormat = errors.New("wirec: malformed wire data")

// MaxField bounds any single variable-length field, defending decoders
// against length-prefix bombs from the untrusted OS or network.
const MaxField = 16 << 20

// AppendHeader starts an encoded value with its type tag and version.
func AppendHeader(dst []byte, tag, version byte) []byte {
	return append(dst, tag, version)
}

// AppendBytes appends a u32 length prefix and the raw bytes.
func AppendBytes(dst, b []byte) []byte {
	var n [4]byte
	binary.BigEndian.PutUint32(n[:], uint32(len(b)))
	dst = append(dst, n[:]...)
	return append(dst, b...)
}

// AppendString appends a length-prefixed string.
func AppendString(dst []byte, s string) []byte {
	var n [4]byte
	binary.BigEndian.PutUint32(n[:], uint32(len(s)))
	dst = append(dst, n[:]...)
	return append(dst, s...)
}

// AppendU32 appends one big-endian uint32.
func AppendU32(dst []byte, v uint32) []byte {
	var n [4]byte
	binary.BigEndian.PutUint32(n[:], v)
	return append(dst, n[:]...)
}

// AppendU64 appends one big-endian uint64.
func AppendU64(dst []byte, v uint64) []byte {
	var n [8]byte
	binary.BigEndian.PutUint64(n[:], v)
	return append(dst, n[:]...)
}

// Reader is a cursor over one encoded value. The first decoding error
// sticks; callers check Done once at the end (and fail fast on header
// mismatch). All byte-slice reads alias the input buffer.
type Reader struct {
	data []byte
	err  error
}

// NewReader wraps raw wire bytes.
func NewReader(raw []byte) *Reader { return &Reader{data: raw} }

// MakeReader is the value form of NewReader, for embedding a Reader
// without a separate allocation (hot decode paths).
func MakeReader(raw []byte) Reader { return Reader{data: raw} }

func (r *Reader) fail() {
	if r.err == nil {
		r.err = ErrFormat
	}
}

// Header consumes and checks the tag/version header.
func (r *Reader) Header(tag, version byte) bool {
	if r.err != nil || len(r.data) < 2 {
		r.fail()
		return false
	}
	if r.data[0] != tag {
		r.err = fmt.Errorf("%w: wrong type tag 0x%02x", ErrFormat, r.data[0])
		return false
	}
	if r.data[1] != version {
		r.err = fmt.Errorf("%w: unsupported format version %d", ErrFormat, r.data[1])
		return false
	}
	r.data = r.data[2:]
	return true
}

// Take consumes n raw bytes.
func (r *Reader) Take(n int) []byte {
	if r.err != nil || n < 0 || len(r.data) < n {
		r.fail()
		return nil
	}
	out := r.data[:n]
	r.data = r.data[n:]
	return out
}

// Bytes consumes a length-prefixed byte field. Empty fields decode as nil.
func (r *Reader) Bytes() []byte {
	hdr := r.Take(4)
	if r.err != nil {
		return nil
	}
	n := binary.BigEndian.Uint32(hdr)
	if n > MaxField {
		r.fail()
		return nil
	}
	if n == 0 {
		return nil
	}
	return r.Take(int(n))
}

// String consumes a length-prefixed string field.
func (r *Reader) String() string {
	return string(r.Bytes())
}

// U32 consumes one big-endian uint32.
func (r *Reader) U32() uint32 {
	b := r.Take(4)
	if r.err != nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

// U64 consumes one big-endian uint64.
func (r *Reader) U64() uint64 {
	b := r.Take(8)
	if r.err != nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// U8 consumes one byte.
func (r *Reader) U8() byte {
	b := r.Take(1)
	if r.err != nil {
		return 0
	}
	return b[0]
}

// Err returns the sticky decoding error, if any, without the
// trailing-bytes check (for mid-value dispatch decisions).
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unconsumed bytes.
func (r *Reader) Remaining() int { return len(r.data) }

// CanHold reports whether n entries of at least minEntrySize bytes each
// could still be present in the remaining input. Decoders call it before
// sizing a count-driven preallocation: a tiny message claiming many
// entries must be rejected before — not after — the allocation it tries
// to provoke.
func (r *Reader) CanHold(n uint32, minEntrySize int) bool {
	return minEntrySize > 0 && int64(n)*int64(minEntrySize) <= int64(len(r.data))
}

// Done asserts the value was consumed exactly and returns the final error.
func (r *Reader) Done() error {
	if r.err == nil && len(r.data) != 0 {
		r.err = fmt.Errorf("%w: %d trailing bytes", ErrFormat, len(r.data))
	}
	return r.err
}
