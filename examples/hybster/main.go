// Hybster example: a TrInX trusted-counter subsystem (the paper's second
// motivating application, §III-B) ordering a replicated log, with one
// replica migrating between machines mid-protocol.
//
// Three replicas certify ordered operations with their TrInX counters;
// verifier logs accept only gapless, non-equivocating sequences. Replica
// 0 migrates; its certification stream continues without reusing any
// counter value, so the verifiers keep accepting — and a replayed stale
// TrInX state is rejected.
//
//	go run ./examples/hybster
package main

import (
	"crypto/ed25519"
	"errors"
	"fmt"
	"log"

	"repro/internal/apps/trinx"
	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/sgx"
	"repro/internal/sim"
	"repro/internal/xcrypto"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func image(name string) *sgx.Image {
	signer := xcrypto.DeriveKey([]byte("hybster-example"), "signer")
	return &sgx.Image{Name: name, Version: 1, Code: []byte(name), SignerPublicKey: ed25519.PublicKey(signer[:])}
}

func run() error {
	dc, err := cloud.NewDataCenter("hybster-dc", sim.NewInstantLatency())
	if err != nil {
		return err
	}
	machines := make([]*cloud.Machine, 4)
	for i := range machines {
		m, err := dc.AddMachine(fmt.Sprintf("machine-%d", i))
		if err != nil {
			return err
		}
		machines[i] = m
	}

	// Replica 0's TrInX subsystem lives in a migratable enclave.
	img := image("trinx-replica-0")
	app, err := machines[0].LaunchApp(img, core.NewMemoryStorage(), core.InitNew)
	if err != nil {
		return err
	}
	svc, err := trinx.New(app.Library)
	if err != nil {
		return err
	}
	ctr := svc.CreateCounter()
	// Peer replicas obtained the verification key over attested channels;
	// each keeps a log that rejects equivocation and gaps.
	logs := []*trinx.Log{
		trinx.NewLog(svc.ExportKey(), ctr),
		trinx.NewLog(svc.ExportKey(), ctr),
	}
	order := func(s *trinx.Service, msg string) error {
		cert, err := s.Certify(ctr, []byte(msg))
		if err != nil {
			return err
		}
		for i, l := range logs {
			if err := l.Append(cert, []byte(msg)); err != nil {
				return fmt.Errorf("verifier %d rejected %q: %w", i, msg, err)
			}
		}
		return nil
	}

	for i := 1; i <= 4; i++ {
		if err := order(svc, fmt.Sprintf("op-%d", i)); err != nil {
			return err
		}
	}
	fmt.Printf("replica 0 certified 4 operations; verifier logs: %d entries each\n", logs[0].Len())

	// The adversary snapshots the TrInX state here...
	staleBlob, err := svc.Persist()
	if err != nil {
		return err
	}
	// ...one more op, then a fresh persist before migration.
	if err := order(svc, "op-5"); err != nil {
		return err
	}
	blob, err := svc.Persist()
	if err != nil {
		return err
	}

	// Migrate replica 0's enclave to machine 3.
	if err := app.Library.StartMigration(machines[3].MEAddress()); err != nil {
		return err
	}
	app.Terminate()
	migrated, err := machines[3].LaunchApp(img, core.NewMemoryStorage(), core.InitMigrated)
	if err != nil {
		return err
	}
	fmt.Println("replica 0 migrated machine-0 -> machine-3")

	// Stale state replay (would re-issue counter value 5 -> equivocation)
	// is rejected by the version check.
	if _, err := trinx.Restore(migrated.Library, svc.CounterID(), staleBlob); !errors.Is(err, trinx.ErrStaleState) {
		return fmt.Errorf("stale TrInX state accepted: %v", err)
	}
	fmt.Println("stale TrInX state rejected: equivocation-by-replay prevented")

	// The current state restores and certification continues seamlessly.
	restoredSvc, err := trinx.Restore(migrated.Library, svc.CounterID(), blob)
	if err != nil {
		return err
	}
	for i := 6; i <= 8; i++ {
		if err := order(restoredSvc, fmt.Sprintf("op-%d", i)); err != nil {
			return err
		}
	}
	fmt.Printf("post-migration certifications accepted; verifier logs: %d entries, no gaps, no equivocation\n",
		logs[0].Len())
	return nil
}
