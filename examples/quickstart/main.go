// Quickstart: the smallest end-to-end use of the migration framework.
//
// It provisions two simulated SGX machines in one data center, runs a
// migratable enclave with a sealed secret and a monotonic counter on the
// first, migrates it to the second, and shows the persistent state
// arriving intact while the source is left frozen.
//
//	go run ./examples/quickstart
package main

import (
	"crypto/ed25519"
	"errors"
	"fmt"
	"log"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/sgx"
	"repro/internal/sim"
	"repro/internal/xcrypto"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A data center with two SGX machines, fully provisioned (Platform
	// Services, Quoting Enclave, Migration Enclave with provider creds).
	dc, err := cloud.NewDataCenter("quickstart-dc", sim.NewInstantLatency())
	if err != nil {
		return err
	}
	src, err := dc.AddMachine("machine-A")
	if err != nil {
		return err
	}
	dst, err := dc.AddMachine("machine-B")
	if err != nil {
		return err
	}

	// Our application enclave image: identical measurement everywhere.
	signer := xcrypto.DeriveKey([]byte("quickstart"), "signer")
	img := &sgx.Image{
		Name:            "quickstart-enclave",
		Version:         1,
		Code:            []byte("hello, persistent state"),
		SignerPublicKey: ed25519.PublicKey(signer[:]),
	}

	// 1. Launch on machine A with a fresh Migration Library.
	storage := core.NewMemoryStorage()
	app, err := src.LaunchApp(img, storage, core.InitNew)
	if err != nil {
		return err
	}
	fmt.Println("enclave running on machine-A")

	// 2. Use the migratable primitives: a counter and sealed data.
	ctr, _, err := app.Library.CreateCounter()
	if err != nil {
		return err
	}
	for i := 0; i < 3; i++ {
		if _, err := app.Library.IncrementCounter(ctr); err != nil {
			return err
		}
	}
	sealed, err := app.Library.SealMigratable([]byte("label"), []byte("the secret"))
	if err != nil {
		return err
	}
	fmt.Println("counter at 3, secret sealed with the migratable sealing key")

	// 3. Migrate: freeze + destroy source counters + transfer via the
	// Migration Enclaves (mutual remote attestation + provider auth).
	if err := app.Library.StartMigration(dst.MEAddress()); err != nil {
		return err
	}
	app.Terminate()
	fmt.Println("migration data transferred machine-A -> machine-B")

	// 4. Restore on machine B.
	migrated, err := dst.LaunchApp(img, core.NewMemoryStorage(), core.InitMigrated)
	if err != nil {
		return err
	}
	v, err := migrated.Library.ReadCounter(ctr)
	if err != nil {
		return err
	}
	secret, _, err := migrated.Library.UnsealMigratable(sealed)
	if err != nil {
		return err
	}
	fmt.Printf("on machine-B: counter = %d (continued), secret = %q (decrypted)\n", v, secret)

	// 5. The source is frozen: restarting it from its persisted blob
	// refuses to operate, so no fork is possible.
	if _, err := src.LaunchApp(img, storage, core.InitRestore); !errors.Is(err, core.ErrFrozen) {
		return fmt.Errorf("expected frozen source, got %v", err)
	}
	fmt.Println("source restart refused (library frozen) — fork prevented")
	return nil
}
