// Fleetdrain: datacenter-scale enclave migration with the fleet
// orchestrator.
//
// It provisions a 3-machine data center, launches 120 migratable
// enclaves (each with a monotonic counter and a sealed secret) on
// machine-A, then drains machine-A for maintenance: the orchestrator
// migrates every enclave concurrently onto the other two machines with
// the least-loaded placement policy, verifying the frozen-source
// invariant after every transfer. Afterwards it proves no state was
// lost: every counter continued exactly where it left off and every
// sealed secret still decrypts.
//
//	go run ./examples/fleetdrain
package main

import (
	"context"
	"crypto/ed25519"
	"fmt"
	"log"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/sgx"
	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/xcrypto"
)

const (
	numApps  = 120
	nWorkers = 16
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	lat := sim.NewInstantLatency()
	net := transport.NewNetwork(lat)
	meter := fleet.NewMeter(net)
	dc, err := cloud.NewDataCenterWithNetwork("fleet-dc", lat, meter)
	if err != nil {
		return err
	}
	a, err := dc.AddMachine("machine-A")
	if err != nil {
		return err
	}
	if _, err := dc.AddMachine("machine-B"); err != nil {
		return err
	}
	if _, err := dc.AddMachine("machine-C"); err != nil {
		return err
	}

	// 1. A full rack of tenants on machine-A, each with persistent state.
	signer := xcrypto.DeriveKey([]byte("fleetdrain"), "signer")
	type state struct {
		ctr    int
		value  uint32
		sealed []byte
	}
	states := make(map[string]state, numApps)
	for i := 0; i < numApps; i++ {
		name := fmt.Sprintf("tenant-%03d", i)
		img := &sgx.Image{
			Name:            name,
			Version:         1,
			Code:            []byte(name),
			SignerPublicKey: ed25519.PublicKey(signer[:]),
		}
		app, err := a.LaunchApp(img, core.NewMemoryStorage(), core.InitNew)
		if err != nil {
			return err
		}
		ctr, _, err := app.Library.CreateCounter()
		if err != nil {
			return err
		}
		incs := uint32(i%9 + 1)
		for j := uint32(0); j < incs; j++ {
			if _, err := app.Library.IncrementCounter(ctr); err != nil {
				return err
			}
		}
		sealed, err := app.Library.SealMigratable(nil, []byte("keys of "+name))
		if err != nil {
			return err
		}
		states[name] = state{ctr: ctr, value: incs, sealed: sealed}
	}
	fmt.Printf("machine-A hosts %d enclaves with counters and sealed secrets\n", a.AppCount())

	// 2. Maintenance: drain machine-A through the orchestrator.
	fmt.Printf("draining machine-A with %d workers (least-loaded policy)...\n\n", nWorkers)
	orch := fleet.New(dc, fleet.Config{Workers: nWorkers, Meter: meter})
	report, err := orch.Execute(context.Background(), fleet.Drain("machine-A"))
	if err != nil {
		return err
	}
	fmt.Println(report)
	fmt.Println()
	for _, m := range dc.Machines() {
		fmt.Printf("%-10s now hosts %3d enclaves\n", m.ID(), m.AppCount())
	}
	if a.AppCount() != 0 {
		return fmt.Errorf("machine-A not empty after drain")
	}
	if report.Completed != numApps {
		return fmt.Errorf("only %d of %d migrations completed", report.Completed, numApps)
	}

	// 3. Prove nothing rolled back and nothing forked: every tenant's
	// counter continued, every secret decrypts, every source is frozen.
	for _, e := range report.Journal.Entries() {
		if !e.SourceFrozen {
			return fmt.Errorf("%s: source not frozen — fork window", e.App)
		}
	}
	verified := 0
	for _, m := range dc.Machines() {
		for _, app := range m.Apps() {
			st := states[app.Image().Name]
			v, err := app.Library.ReadCounter(st.ctr)
			if err != nil {
				return err
			}
			if v != st.value {
				return fmt.Errorf("%s: counter %d, want %d — rollback", app.Image().Name, v, st.value)
			}
			if _, _, err := app.Library.UnsealMigratable(st.sealed); err != nil {
				return fmt.Errorf("%s: sealed secret lost: %w", app.Image().Name, err)
			}
			verified++
		}
	}
	fmt.Printf("\nverified %d tenants: counters continued, secrets decrypt, sources frozen\n", verified)
	return nil
}
