// Command rackrecovery demonstrates restart-anywhere recovery: a rack of
// three machines runs a replicated counter group, an enclave on one of
// them escrows its Table II state with the rack on every persist, the
// machine is killed without warning — and the enclave is resurrected on
// a rack peer with its counters AND its sealed application state intact,
// while the zombie copy a restarted machine might replay is rejected.
package main

import (
	"crypto/ed25519"
	"errors"
	"fmt"
	"os"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/sgx"
	"repro/internal/sim"
	"repro/internal/xcrypto"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "rackrecovery:", err)
		os.Exit(1)
	}
}

// ledgerImage is the demo enclave (same identity across launches, like a
// deployed application build).
func ledgerImage() *sgx.Image {
	key := xcrypto.DeriveKey([]byte("rackrecovery"), "signer")
	return &sgx.Image{
		Name:            "ledger",
		Version:         1,
		Code:            []byte("ledger service"),
		SignerPublicKey: ed25519.PublicKey(key[:]),
	}
}

func run() error {
	dc, err := cloud.NewDataCenter("demo", sim.NewInstantLatency())
	if err != nil {
		return err
	}
	for _, id := range []string{"r1", "r2", "r3"} {
		if _, err := dc.AddMachine(id); err != nil {
			return err
		}
	}
	if _, err := dc.NewReplicaGroup("rack-1", 1, "r1", "r2", "r3"); err != nil {
		return err
	}
	fmt.Println("rack-1: 3 machines, f=1 replica group, state escrow enabled")

	r1, _ := dc.Machine("r1")
	app, err := r1.LaunchApp(ledgerImage(), core.NewMemoryStorage(), core.InitNew)
	if err != nil {
		return err
	}
	ctr, _, err := app.Library.CreateCounter()
	if err != nil {
		return err
	}
	for i := 0; i < 7; i++ {
		if _, err := app.Library.IncrementCounter(ctr); err != nil {
			return err
		}
	}
	sealed, err := app.Library.SealMigratable([]byte("ledger"), []byte("balance=1337"))
	if err != nil {
		return err
	}
	fmt.Println("ledger on r1: counter at 7, balance sealed under the MSK")

	storage := app.Storage
	r1.Kill()
	fmt.Println("r1 killed: enclave memory gone, local sealed blob unreachable")

	recovered, err := dc.RecoverMachine("r1", "r2")
	if err != nil {
		// Partial recoveries used to be visible only in logs: print the
		// per-app outcome summary on the error path and exit non-zero
		// (main wraps this error into exit code 1).
		fmt.Fprintf(os.Stderr, "rackrecovery: recovered %d app(s); unrecovered remain in r1's lost manifest:\n", len(recovered))
		for _, la := range r1.LostApps() {
			fmt.Fprintf(os.Stderr, "  lost: %s (escrowed=%v)\n", la.Image.Name, la.Escrowed)
		}
		return err
	}
	if len(recovered) == 0 {
		return errors.New("no apps recovered")
	}
	lib := recovered[0].Library
	v, err := lib.ReadCounter(ctr)
	if err != nil {
		return err
	}
	pt, _, err := lib.UnsealMigratable(sealed)
	if err != nil {
		return err
	}
	fmt.Printf("recovered on r2: counter = %d (continued), %s (decrypted)\n", v, pt)
	if _, err := lib.IncrementCounter(ctr); err != nil {
		return err
	}

	// The zombie path is dead: r1 comes back and replays its old blob.
	if err := r1.Restart(); err != nil {
		return err
	}
	if _, err := r1.LaunchApp(ledgerImage(), storage, core.InitRestore); !errors.Is(err, core.ErrRecoveredAway) {
		return fmt.Errorf("zombie restore not refused: %v", err)
	}
	fmt.Println("zombie restore on restarted r1 refused: state lives on r2 (fork prevented)")
	return nil
}
