// Teechan example: a payment channel that safely follows its enclave
// across machines (the paper's first motivating application, §III-B).
//
// Alice and Bob hold a Teechan-style channel. Alice's enclave migrates
// mid-session from one machine to another; payments continue seamlessly
// afterwards, and the stale pre-migration state the adversary kept is
// rejected everywhere.
//
//	go run ./examples/teechan
package main

import (
	"crypto/ed25519"
	"errors"
	"fmt"
	"log"

	"repro/internal/apps/teechan"
	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/sgx"
	"repro/internal/sim"
	"repro/internal/xcrypto"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func image(name string) *sgx.Image {
	signer := xcrypto.DeriveKey([]byte("teechan-example"), "signer")
	return &sgx.Image{Name: name, Version: 1, Code: []byte(name), SignerPublicKey: ed25519.PublicKey(signer[:])}
}

func run() error {
	dc, err := cloud.NewDataCenter("teechan-dc", sim.NewInstantLatency())
	if err != nil {
		return err
	}
	mA, err := dc.AddMachine("machine-A")
	if err != nil {
		return err
	}
	mB, err := dc.AddMachine("machine-B")
	if err != nil {
		return err
	}

	// Alice's enclave on machine A, Bob's stays put on machine B.
	aliceApp, err := mA.LaunchApp(image("teechan-alice"), core.NewMemoryStorage(), core.InitNew)
	if err != nil {
		return err
	}
	bobApp, err := mB.LaunchApp(image("teechan-bob"), core.NewMemoryStorage(), core.InitNew)
	if err != nil {
		return err
	}
	alice, err := teechan.Open(aliceApp.Library, "alice", "bob", 1000, 1000)
	if err != nil {
		return err
	}
	bob, err := teechan.Open(bobApp.Library, "bob", "alice", 1000, 1000)
	if err != nil {
		return err
	}
	fmt.Println("channel open: alice=1000, bob=1000")

	// Micropayments flow.
	for i := 0; i < 5; i++ {
		p, err := alice.Pay(50)
		if err != nil {
			return err
		}
		if err := bob.Receive(p); err != nil {
			return err
		}
	}
	aBal, _ := alice.Balances()
	fmt.Printf("after 5 payments of 50: alice=%d\n", aBal)

	// Adversary snapshots Alice's state now (alice=750)...
	staleBlob, err := alice.Persist()
	if err != nil {
		return err
	}
	// ...but Alice keeps paying and persists again (alice=650).
	for i := 0; i < 2; i++ {
		p, err := alice.Pay(50)
		if err != nil {
			return err
		}
		if err := bob.Receive(p); err != nil {
			return err
		}
	}
	currentBlob, err := alice.Persist()
	if err != nil {
		return err
	}

	// Alice's enclave migrates to machine B (e.g. host maintenance).
	if err := aliceApp.Library.StartMigration(mB.MEAddress()); err != nil {
		return err
	}
	aliceApp.Terminate()
	aliceMigrated, err := mB.LaunchApp(image("teechan-alice"), core.NewMemoryStorage(), core.InitMigrated)
	if err != nil {
		return err
	}
	fmt.Println("alice's enclave migrated machine-A -> machine-B")

	// Current state restores; stale state is rejected (rollback blocked).
	restored, err := teechan.Restore(aliceMigrated.Library, alice.CounterID(), currentBlob)
	if err != nil {
		return err
	}
	bal, _ := restored.Balances()
	fmt.Printf("channel restored after migration: alice=%d\n", bal)
	if _, err := teechan.Restore(aliceMigrated.Library, alice.CounterID(), staleBlob); !errors.Is(err, teechan.ErrStaleState) {
		return fmt.Errorf("stale channel state was accepted: %v", err)
	}
	fmt.Println("adversary's stale snapshot (alice=750) rejected: roll-back prevented")

	// The channel keeps working after migration.
	p, err := restored.Pay(25)
	if err != nil {
		return err
	}
	if err := bob.Receive(p); err != nil {
		return err
	}
	bal, _ = restored.Balances()
	bBal, _ := bob.Balances()
	fmt.Printf("post-migration payment ok: alice=%d, bob=%d (sum conserved: %v)\n",
		bal, bBal, bal+bBal == 2000)
	return nil
}
