// Rollback attack walkthrough: the paper's §III-C attack, step by step,
// first against a baseline whose migration does not move monotonic
// counters (it succeeds), then against the Migration Library (it fails).
//
//	go run ./examples/rollbackattack
package main

import (
	"crypto/ed25519"
	"encoding/json"
	"fmt"
	"log"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/gubaseline"
	"repro/internal/pse"
	"repro/internal/seal"
	"repro/internal/sgx"
	"repro/internal/sim"
	"repro/internal/xcrypto"
)

type wallet struct {
	Balance int    `json:"balance"`
	Version uint32 `json:"version"`
}

func image(name string) *sgx.Image {
	signer := xcrypto.DeriveKey([]byte("rollback-example"), "signer")
	return &sgx.Image{Name: name, Version: 1, Code: []byte(name), SignerPublicKey: ed25519.PublicKey(signer[:])}
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("== Part 1: baseline (sealing migrates via KDC, counters do not) ==")
	if err := baselineAttack(); err != nil {
		return err
	}
	fmt.Println()
	fmt.Println("== Part 2: the same schedule against the Migration Library ==")
	return migrationLibraryDefense()
}

func baselineAttack() error {
	lat := sim.NewInstantLatency()
	mA, err := sgx.NewMachine("A", lat)
	if err != nil {
		return err
	}
	mB, err := sgx.NewMachine("B", lat)
	if err != nil {
		return err
	}
	ctrA, ctrB := pse.NewService(lat), pse.NewService(lat)
	kdcKey, err := xcrypto.RandomBytes(16)
	if err != nil {
		return err
	}
	img := image("wallet")

	eA, err := mA.Load(img)
	if err != nil {
		return err
	}
	libA := gubaseline.NewLibrary(eA, ctrA, gubaseline.Config{}, nil)
	ref, _, err := libA.CreateCounter()
	if err != nil {
		return err
	}
	persist := func(lib *gubaseline.Library, r, balance int) ([]byte, uint32, error) {
		v, err := lib.IncrementCounter(r)
		if err != nil {
			return nil, 0, err
		}
		raw, _ := json.Marshal(wallet{Balance: balance, Version: v})
		blob, err := seal.SealRaw(kdcKey, nil, raw)
		return blob, v, err
	}
	blobV1, v, err := persist(libA, ref, 100)
	if err != nil {
		return err
	}
	fmt.Printf("step 1: on A, wallet=100 persisted with version %d (adversary keeps a copy)\n", v)
	if _, _, err := persist(libA, ref, 60); err != nil {
		return err
	}
	if _, v, err = persist(libA, ref, 10); err != nil {
		return err
	}
	fmt.Printf("step 2: wallet spends down to 10 (version %d)\n", v)

	// Step 3+4: VM migrates; on B the enclave finds no counters and
	// creates a fresh one, incrementing it on termination (c' = 1).
	eB, err := mB.Load(img)
	if err != nil {
		return err
	}
	libB := gubaseline.NewLibrary(eB, ctrB, gubaseline.Config{}, nil)
	refB, _, err := libB.CreateCounter()
	if err != nil {
		return err
	}
	if _, err := libB.IncrementCounter(refB); err != nil {
		return err
	}
	fmt.Println("step 3: VM migrates to B; enclave creates a NEW counter there (c' = 1)")

	// Step 5: adversary feeds the original v=1 blob.
	raw, _, err := seal.UnsealRaw(kdcKey, blobV1)
	if err != nil {
		return err
	}
	var w wallet
	if err := json.Unmarshal(raw, &w); err != nil {
		return err
	}
	cur, err := libB.ReadCounter(refB)
	if err != nil {
		return err
	}
	if w.Version == cur {
		fmt.Printf("step 4: enclave on B accepts the STALE state: wallet=%d again (was 10)\n", w.Balance)
		fmt.Println("        >>> ROLLBACK ATTACK SUCCEEDED <<<")
		return nil
	}
	return fmt.Errorf("baseline unexpectedly rejected the stale state")
}

func migrationLibraryDefense() error {
	dc, err := cloud.NewDataCenter("dc", sim.NewInstantLatency())
	if err != nil {
		return err
	}
	src, err := dc.AddMachine("A")
	if err != nil {
		return err
	}
	dst, err := dc.AddMachine("B")
	if err != nil {
		return err
	}
	img := image("wallet")
	app, err := src.LaunchApp(img, core.NewMemoryStorage(), core.InitNew)
	if err != nil {
		return err
	}
	ctr, _, err := app.Library.CreateCounter()
	if err != nil {
		return err
	}
	persist := func(a *cloud.App, balance int) ([]byte, uint32, error) {
		v, err := a.Library.IncrementCounter(ctr)
		if err != nil {
			return nil, 0, err
		}
		raw, _ := json.Marshal(wallet{Balance: balance, Version: v})
		blob, err := a.Library.SealMigratable(nil, raw)
		return blob, v, err
	}
	blobV1, v, err := persist(app, 100)
	if err != nil {
		return err
	}
	fmt.Printf("step 1: on A, wallet=100 persisted with version %d (adversary keeps a copy)\n", v)
	if _, _, err := persist(app, 60); err != nil {
		return err
	}
	if _, v, err = persist(app, 10); err != nil {
		return err
	}
	fmt.Printf("step 2: wallet spends down to 10 (version %d)\n", v)

	if err := app.Library.StartMigration(dst.MEAddress()); err != nil {
		return err
	}
	app.Terminate()
	migrated, err := dst.LaunchApp(img, core.NewMemoryStorage(), core.InitMigrated)
	if err != nil {
		return err
	}
	fmt.Println("step 3: enclave migrates to B WITH its counter (effective value 3)")

	raw, _, err := migrated.Library.UnsealMigratable(blobV1)
	if err != nil {
		return err
	}
	var w wallet
	if err := json.Unmarshal(raw, &w); err != nil {
		return err
	}
	cur, err := migrated.Library.ReadCounter(ctr)
	if err != nil {
		return err
	}
	if w.Version == cur {
		return fmt.Errorf("rollback succeeded against the migration library")
	}
	fmt.Printf("step 4: stale blob carries version %d but the migrated counter reads %d\n", w.Version, cur)
	fmt.Println("        >>> rollback attack PREVENTED (R4) <<<")
	return nil
}
